"""Synthetic PubMed-like citation corpus (the Section 6 substrate).

The paper evaluates on 18 M PubMed citations — proprietary-scale data we
replace with a generator that controls exactly the distributional
properties the paper's claims rest on:

* every citation has ``title``/``abstract`` text and MeSH-style
  annotations with ancestor inheritance (heavily skewed context sizes);
* each ontology concept carries its own *topic vocabulary*, so keyword
  statistics (``df``, ``tc``) genuinely differ between contexts — the
  premise of context-sensitive ranking;
* topic vocabularies deliberately include globally *common* words, so
  "common over D, rare/discriminative inside D_P" (the leukemia/pancreas
  story of Section 1.1) occurs by construction.

Everything is driven by one explicitly seeded RNG; identical configs
produce identical corpora.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .._rng import derive_rng, make_rng, weighted_sample, zipf_weights
from ..errors import DataGenerationError
from ..index.analysis import DEFAULT_STOPWORDS
from ..index.documents import Document
from ..index.inverted_index import InvertedIndex, build_index
from .mesh import MeshOntology

# Real biomedical words seeded into the vocabulary for readable examples.
SEED_WORDS = (
    "pancreas", "leukemia", "transplant", "infection", "parvovirus",
    "symptom", "gastric", "tumor", "therapy", "lymphoma", "anemia",
    "insulin", "biopsy", "carcinoma", "mutation", "receptor", "protein",
    "kinase", "antibody", "antigen", "diagnosis", "prognosis", "syndrome",
    "lesion", "chronic", "acute", "clinical", "hepatic", "renal",
    "cardiac", "pulmonary", "vascular", "metastasis", "remission",
    "chemotherapy", "radiation", "genome", "sequence", "expression",
    "pathway", "inflammation", "fibrosis", "necrosis", "apoptosis",
    "malignant", "benign", "screening", "cohort",
)

_ONSETS = (
    "b", "c", "d", "f", "g", "h", "k", "l", "m", "n", "p", "r", "s", "t",
    "v", "z", "br", "cr", "dr", "gl", "pr", "st", "tr", "pl", "sp",
)
_VOWELS = ("a", "e", "i", "o", "u")
_CODAS = ("", "", "n", "r", "s", "x", "l", "m")

_STOPWORD_POOL = tuple(sorted(DEFAULT_STOPWORDS))


@dataclass(frozen=True)
class CorpusConfig:
    """All knobs of the generator; defaults give a quick laptop-scale corpus."""

    num_docs: int = 5000
    vocabulary_size: int = 4000
    seed: int = 42
    # Ontology shape.
    num_roots: int = 6
    branching: int = 4
    depth: int = 3
    # Annotations per document (leaf terms, before ancestor inheritance).
    annotations_min: int = 2
    annotations_max: int = 4
    # Text shape.
    title_length_mean: int = 9
    abstract_length_mean: int = 70
    stopword_rate: float = 0.25
    # Topic model: per-concept vocabulary and how strongly documents use it.
    topic_vocab_size: int = 40
    topic_mixture: float = 0.45
    # A document is *about* its first annotation: that primary concept
    # receives this share of the topical draws, concentrating its words
    # (burstiness) — the within-document relevance signal TREC-style
    # judgements key on.
    primary_share: float = 0.55
    # Zipf skew *within* a concept's vocabulary: higher values focus mass
    # on the concept's few characteristic words, giving them tf > 1 in
    # documents about the concept.
    topic_word_skew: float = 1.3
    zipf_skew: float = 1.05
    term_popularity_skew: float = 1.05
    aliases_per_term: int = 2
    # Publication years (for the Section 7 time-extended contexts):
    # drawn from [year_min, year_max] with linearly increasing weight,
    # like real literature growth.
    year_min: int = 1985
    year_max: int = 2010

    def __post_init__(self):
        if self.num_docs < 1:
            raise DataGenerationError("num_docs must be positive")
        if self.vocabulary_size < len(SEED_WORDS) + 10:
            raise DataGenerationError(
                f"vocabulary_size must be at least {len(SEED_WORDS) + 10}"
            )
        if not 0.0 <= self.topic_mixture <= 1.0:
            raise DataGenerationError("topic_mixture must be in [0, 1]")
        if not 0.0 <= self.primary_share <= 1.0:
            raise DataGenerationError("primary_share must be in [0, 1]")
        if not 0.0 <= self.stopword_rate < 1.0:
            raise DataGenerationError("stopword_rate must be in [0, 1)")
        if self.annotations_min < 1 or self.annotations_max < self.annotations_min:
            raise DataGenerationError("invalid annotations_min/max")
        if self.year_max < self.year_min:
            raise DataGenerationError("year_max must be >= year_min")


@dataclass
class SyntheticCorpus:
    """The generator's output: documents plus the latent structure.

    The latent structure (topic vocabularies, aliases) is what the
    TREC-style benchmark and the ATM simulation consume; a real deployment
    would not have it, but the evaluation harness needs the ground truth.
    """

    config: CorpusConfig
    documents: List[Document]
    ontology: MeshOntology
    vocabulary: List[str]
    topic_vocabularies: Dict[str, List[str]]
    aliases: Dict[str, List[str]]
    annotations: List[Tuple[str, ...]]  # per-doc leaf annotations

    def __len__(self) -> int:
        return len(self.documents)

    def primary_concept(self, doc_number: int) -> str:
        """The concept document ``doc_number`` is *about* (first annotation).

        The generator concentrates ``primary_share`` of a document's
        topical vocabulary on this concept; TREC-style relevance
        judgements in :mod:`repro.data.trec` key on it.
        """
        return self.annotations[doc_number][0]

    def build_index(self, **index_kwargs) -> InvertedIndex:
        """Index the corpus with default analyzers."""
        return build_index(self.documents, **index_kwargs)


def _generate_vocabulary(config: CorpusConfig, rng) -> List[str]:
    """Pseudo-medical word list, seed words interleaved at spread ranks."""
    words: List[str] = []
    seen = set()
    while len(words) < config.vocabulary_size - len(SEED_WORDS):
        syllables = rng.randint(2, 4)
        word = "".join(
            rng.choice(_ONSETS) + rng.choice(_VOWELS) + rng.choice(_CODAS)
            for _ in range(syllables)
        )
        if len(word) >= 4 and word not in seen and word not in DEFAULT_STOPWORDS:
            seen.add(word)
            words.append(word)
    # Interleave seed words across the rank spectrum so that some are
    # globally common and some rare.  Start past the Zipf head: rank-0
    # words appear in nearly every document, which would make the seed
    # words useless as query keywords.
    stride = max(1, len(words) // len(SEED_WORDS))
    for position, seed_word in enumerate(SEED_WORDS):
        words.insert(min(25 + position * stride, len(words)), seed_word)
    return words


def _assign_topic_vocabularies(
    config: CorpusConfig,
    vocabulary: Sequence[str],
    ontology: MeshOntology,
    rng,
) -> Dict[str, List[str]]:
    """Give *every* ontology term (leaf and internal) a characteristic word list.

    Each concept's strongest words (the first ``exclusive_words`` of its
    vocabulary, which get most of the Zipf mass and become its ATM entry
    terms) are *exclusive* to it — "leukemia" chiefly signals
    leukemia-related documents, as in real text; without exclusivity,
    high term frequency would not indicate aboutness and no ranking could
    exploit it.  The tail of each vocabulary is shared freely.

    Two bands recreate the paper's Section 1.1 phenomenon:

    * **leaf** concepts take their exclusive words from the globally
      *common* band (low Zipf ranks): words frequent over D yet
      extra-concentrated in the concept's documents — weak global idf,
      discriminative inside a context;
    * **internal** concepts (which become the large contexts) take theirs
      from the globally *rare* band: rare over D but, because every
      document under the subtree uses them, *common inside the context*
      — the "leukemia is rare over the Web but extremely common among
      cancer articles" inversion that flips idf orderings.
    """
    common_pool = list(vocabulary[: max(10, (3 * len(vocabulary)) // 10)])
    rare_pool = list(vocabulary[len(vocabulary) // 3 :])
    rng.shuffle(common_pool)
    rng.shuffle(rare_pool)

    exclusive = max(2, min(config.aliases_per_term + 4, config.topic_vocab_size // 4))
    topic_vocabs: Dict[str, List[str]] = {}
    for name in ontology.all_terms:
        pool = common_pool if ontology.term(name).is_leaf else rare_pool
        head: List[str] = []
        while pool and len(head) < exclusive:
            head.append(pool.pop())
        # Pool exhausted (tiny vocabularies): fall back to shared sampling.
        if len(head) < exclusive:
            head += rng.sample(vocabulary, exclusive - len(head))
        tail = rng.sample(vocabulary, config.topic_vocab_size - len(head))
        # Deduplicate, preserving order (strongest aliases come first).
        topic_vocabs[name] = list(dict.fromkeys(head + tail))
    return topic_vocabs


def generate_corpus(config: Optional[CorpusConfig] = None) -> SyntheticCorpus:
    """Generate the full synthetic corpus for ``config`` (deterministic)."""
    config = config if config is not None else CorpusConfig()
    master = make_rng(config.seed)
    rng_vocab = derive_rng(master, "vocabulary")
    rng_ontology = derive_rng(master, "ontology")
    rng_topics = derive_rng(master, "topics")
    rng_docs = derive_rng(master, "documents")
    rng_years = derive_rng(master, "years")

    vocabulary = _generate_vocabulary(config, rng_vocab)
    # Cumulative weights make each draw O(log V) instead of O(V).
    word_cum_weights = list(
        itertools.accumulate(zipf_weights(len(vocabulary), config.zipf_skew))
    )

    ontology = MeshOntology.generate(
        num_roots=config.num_roots,
        branching=config.branching,
        depth=config.depth,
        seed=rng_ontology,
    )
    leaves = list(ontology.leaves)
    leaf_weights = ontology.popularity_weights(config.term_popularity_skew)
    leaf_weight_list = [leaf_weights[leaf] for leaf in leaves]

    topic_vocabs = _assign_topic_vocabularies(
        config, vocabulary, ontology, rng_topics
    )
    topic_cum_weight_cache = {
        term: list(
            itertools.accumulate(
                zipf_weights(len(words), config.topic_word_skew)
            )
        )
        for term, words in topic_vocabs.items()
    }

    # Entry terms for the ATM simulation: each concept's strongest topic
    # words map back to it (internal concepts included — PubMed's ATM maps
    # to headings at every level of the hierarchy).
    aliases: Dict[str, List[str]] = {}
    for name in ontology.all_terms:
        for word in topic_vocabs[name][: config.aliases_per_term]:
            aliases.setdefault(word, []).append(name)

    documents: List[Document] = []
    annotations: List[Tuple[str, ...]] = []
    for doc_number in range(config.num_docs):
        n_annotations = rng_docs.randint(
            config.annotations_min, config.annotations_max
        )
        doc_leaves = tuple(
            weighted_sample(rng_docs, leaves, leaf_weight_list, n_annotations)
        )
        mesh_terms = sorted(ontology.expand_with_ancestors(doc_leaves))
        # Topical tokens may come from any annotated concept, ancestors
        # included: that is what makes internal-concept words common
        # *within* their subtree's context and rare outside it.
        topical_terms = [t for t in mesh_terms if ontology.term(t).parent is not None]
        primary_leaf = doc_leaves[0]

        def emit_tokens(length: int) -> str:
            tokens: List[str] = []
            for _ in range(length):
                roll = rng_docs.random()
                if roll < config.stopword_rate:
                    tokens.append(rng_docs.choice(_STOPWORD_POOL))
                elif roll < config.stopword_rate + (
                    1.0 - config.stopword_rate
                ) * config.topic_mixture:
                    if rng_docs.random() < config.primary_share:
                        term = primary_leaf
                    else:
                        term = rng_docs.choice(topical_terms)
                    words = topic_vocabs[term]
                    (token,) = rng_docs.choices(
                        words, cum_weights=topic_cum_weight_cache[term], k=1
                    )
                    tokens.append(token)
                else:
                    (token,) = rng_docs.choices(
                        vocabulary, cum_weights=word_cum_weights, k=1
                    )
                    tokens.append(token)
            return " ".join(tokens)

        title_len = max(3, rng_docs.randint(
            config.title_length_mean - 3, config.title_length_mean + 3
        ))
        abstract_len = max(10, rng_docs.randint(
            int(config.abstract_length_mean * 0.7),
            int(config.abstract_length_mean * 1.3),
        ))
        # Years come from their own stream so adding the attribute does
        # not perturb the text of corpora generated by older versions.
        years = range(config.year_min, config.year_max + 1)
        (year,) = rng_years.choices(
            years, weights=range(1, len(years) + 1), k=1
        )
        documents.append(
            Document(
                doc_id=f"PMID{doc_number:07d}",
                fields={
                    "title": emit_tokens(title_len),
                    "abstract": emit_tokens(abstract_len),
                    "mesh": " ".join(mesh_terms),
                    "year": str(year),
                },
            )
        )
        annotations.append(doc_leaves)

    return SyntheticCorpus(
        config=config,
        documents=documents,
        ontology=ontology,
        vocabulary=vocabulary,
        topic_vocabularies=topic_vocabs,
        aliases=aliases,
        annotations=annotations,
    )
