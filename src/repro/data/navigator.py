"""Ontology navigation for context construction (Figure 2).

The paper's users build contexts by navigating the MeSH hierarchy in a
visual tool and selecting terms — "the use of such tools … removes the
risk of mistyping the context terms".  This module is that tool's
engine: browse the hierarchy with live document counts, accumulate a
selection, preview the resulting context size, and get refinement
suggestions (narrower/broader terms) when the context is too large or
too small to be useful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.query import ContextSpecification
from ..errors import DataGenerationError, QueryError
from ..index.inverted_index import InvertedIndex
from ..index.searcher import BooleanSearcher
from .mesh import MeshOntology


@dataclass(frozen=True)
class TermEntry:
    """One hierarchy entry as shown by the navigator."""

    name: str
    depth: int
    document_count: int
    num_children: int

    @property
    def is_leaf(self) -> bool:
        return self.num_children == 0


class OntologyNavigator:
    """Stateful hierarchy browser with a running term selection."""

    def __init__(self, ontology: MeshOntology, index: InvertedIndex):
        self.ontology = ontology
        self.index = index
        self._searcher = BooleanSearcher(index)
        self._selection: List[str] = []

    # -- browsing ----------------------------------------------------------

    def _entry(self, name: str) -> TermEntry:
        term = self.ontology.term(name)
        return TermEntry(
            name=name,
            depth=term.depth,
            document_count=self.index.predicate_frequency(name),
            num_children=len(term.children),
        )

    def roots(self) -> List[TermEntry]:
        """Top-level categories, most-populated first."""
        entries = [self._entry(name) for name in self.ontology.roots]
        return sorted(entries, key=lambda e: (-e.document_count, e.name))

    def children(self, name: str) -> List[TermEntry]:
        """One term's children with document counts, most-populated first."""
        entries = [
            self._entry(child) for child in self.ontology.term(name).children
        ]
        return sorted(entries, key=lambda e: (-e.document_count, e.name))

    def path_to_root(self, name: str) -> List[TermEntry]:
        """Breadcrumbs: the term and its ancestors up to the root."""
        return [self._entry(name)] + [
            self._entry(ancestor) for ancestor in self.ontology.ancestors(name)
        ]

    # -- selection ---------------------------------------------------------

    @property
    def selection(self) -> Tuple[str, ...]:
        return tuple(self._selection)

    def select(self, name: str) -> "OntologyNavigator":
        """Add a term to the selection (names are validated against the
        ontology — the navigator cannot produce a mistyped context)."""
        if name not in self.ontology:
            raise DataGenerationError(f"unknown ontology term: {name!r}")
        if name not in self._selection:
            self._selection.append(name)
        return self

    def deselect(self, name: str) -> "OntologyNavigator":
        if name in self._selection:
            self._selection.remove(name)
        return self

    def clear(self) -> "OntologyNavigator":
        self._selection.clear()
        return self

    def context_size(self) -> int:
        """Live preview of the selected context's size."""
        if not self._selection:
            return self.index.num_docs
        return self._searcher.context_size(self._selection)

    def build(self) -> ContextSpecification:
        """Finalise the selection into a context specification."""
        if not self._selection:
            raise QueryError("select at least one term before building")
        if self.context_size() == 0:
            raise QueryError(
                f"selected terms {self._selection} match no documents together"
            )
        return ContextSpecification(self._selection)

    # -- refinement suggestions -----------------------------------------------

    def suggest_narrower(self, max_suggestions: int = 5) -> List[TermEntry]:
        """Child terms that would shrink the current context the least.

        For a specialist whose context is too broad: replacing a selected
        term with one of its children keeps the topic while narrowing the
        scope.  Suggestions are children of selected terms, ranked by how
        many of the *current context's* documents they retain.
        """
        if not self._selection:
            return []
        current = set(self._searcher.search_context(self._selection))
        candidates = []
        for name in self._selection:
            for child in self.ontology.term(name).children:
                plist = self.index.predicate_postings(child)
                retained = sum(1 for d in plist.doc_ids if d in current)
                if 0 < retained < len(current):
                    candidates.append((retained, self._entry(child)))
        candidates.sort(key=lambda pair: (-pair[0], pair[1].name))
        return [entry for _, entry in candidates[:max_suggestions]]

    def suggest_broader(self, max_suggestions: int = 5) -> List[TermEntry]:
        """Parent terms that would grow the context (too-small selections).

        The paper notes statistics over tiny contexts are unreliable
        (Section 6.3); broadening to a parent heading is the standard
        remedy.
        """
        if not self._selection:
            return []
        seen = set(self._selection)
        suggestions = []
        for name in self._selection:
            parent = self.ontology.term(name).parent
            if parent is not None and parent not in seen:
                seen.add(parent)
                suggestions.append(self._entry(parent))
        suggestions.sort(key=lambda e: (-e.document_count, e.name))
        return suggestions[:max_suggestions]
