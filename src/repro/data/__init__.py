"""Synthetic PubMed/MeSH/TREC substrate (the Section 6 data stack).

Everything the paper gets from proprietary or non-redistributable data is
generated here with the same distributional structure: the MeSH-like
ontology with annotation inheritance, the citation corpus with
per-concept vocabularies, PubMed's Automatic Term Mapping, the
TREC-Genomics-style quality benchmark, and the Figure 7/8 performance
workloads.  See DESIGN.md §3 for the substitution rationale.
"""

from .mesh import ROOT_CATEGORIES, MeshOntology, MeshTerm
from .corpus import (
    SEED_WORDS,
    CorpusConfig,
    SyntheticCorpus,
    generate_corpus,
)
from .atm import AutomaticTermMapper
from .trec import QualityBenchmark, Topic, generate_benchmark
from .workloads import (
    PerformanceWorkload,
    WorkloadQuery,
    generate_performance_workload,
)
from .navigator import OntologyNavigator, TermEntry
from .diagnostics import (
    ContextSizeProfile,
    InversionExample,
    ZipfFit,
    context_divergence,
    context_size_profile,
    find_idf_inversions,
    fit_zipf,
)

__all__ = [
    "OntologyNavigator",
    "TermEntry",
    "ContextSizeProfile",
    "InversionExample",
    "ZipfFit",
    "context_divergence",
    "context_size_profile",
    "find_idf_inversions",
    "fit_zipf",
    "ROOT_CATEGORIES",
    "MeshOntology",
    "MeshTerm",
    "SEED_WORDS",
    "CorpusConfig",
    "SyntheticCorpus",
    "generate_corpus",
    "AutomaticTermMapper",
    "QualityBenchmark",
    "Topic",
    "generate_benchmark",
    "PerformanceWorkload",
    "WorkloadQuery",
    "generate_performance_workload",
]
