"""Automatic Term Mapping (ATM) simulation.

PubMed's ATM maps free-text query keywords to MeSH terms ("Given a set
of keywords, PubMed's ATM maps them to one or more MeSH terms",
Section 6.1); the paper uses it to construct context specifications
mechanically for both the quality benchmark and the performance
workloads.  Our mapper does the same against the synthetic corpus's
alias table (each ontology concept's strongest topic words are its entry
terms).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.query import ContextSpecification
from .corpus import SyntheticCorpus
from .mesh import MeshOntology


class AutomaticTermMapper:
    """Keyword → ontology-term mapper with optional ancestor generalisation."""

    def __init__(
        self,
        aliases: Mapping[str, Sequence[str]],
        ontology: Optional[MeshOntology] = None,
        generalise_to_parent: bool = False,
    ):
        self._aliases: Dict[str, List[str]] = {
            word.lower(): list(terms) for word, terms in aliases.items()
        }
        self._ontology = ontology
        self._generalise = generalise_to_parent
        if generalise_to_parent and ontology is None:
            raise ValueError("generalise_to_parent requires an ontology")

    @classmethod
    def from_corpus(
        cls, corpus: SyntheticCorpus, generalise_to_parent: bool = False
    ) -> "AutomaticTermMapper":
        return cls(
            corpus.aliases, corpus.ontology, generalise_to_parent
        )

    def map_keyword(self, keyword: str) -> List[str]:
        """Ontology terms for one keyword (empty when unmapped).

        With ``generalise_to_parent``, leaf hits are lifted to their
        parents — mimicking ATM's tendency to map to broader headings,
        which yields the *larger* contexts performance experiments need.
        """
        terms = self._aliases.get(keyword.lower(), [])
        if not self._generalise or self._ontology is None:
            return list(terms)
        lifted: List[str] = []
        for term in terms:
            parent = self._ontology.term(term).parent
            lifted.append(parent if parent is not None else term)
        return list(dict.fromkeys(lifted))

    def map_keywords(self, keywords: Iterable[str]) -> List[str]:
        """Deduplicated union of mappings, in first-hit order."""
        out: List[str] = []
        for keyword in keywords:
            for term in self.map_keyword(keyword):
                if term not in out:
                    out.append(term)
        return out

    def build_context(
        self, keywords: Iterable[str], max_terms: Optional[int] = None
    ) -> Optional[ContextSpecification]:
        """A context specification from mapped keywords, or ``None``.

        ``None`` (no keyword mapped) corresponds to ATM failing to find
        MeSH headings, in which case the paper's pipeline has no context
        to attach.
        """
        terms = self.map_keywords(keywords)
        if not terms:
            return None
        if max_terms is not None:
            terms = terms[:max_terms]
        return ContextSpecification(terms)
