"""Exception hierarchy for the ``repro`` library.

Every error raised by library code derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class IndexError_(ReproError):
    """Raised for malformed index operations (duplicate docids, bad fields).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``IndexingError`` from the package root.
    """


class QueryError(ReproError):
    """Raised when a query is syntactically or semantically invalid."""


class StorageError(ReproError):
    """Raised when a persisted artefact is missing, corrupt, or unsupported.

    Lives here (rather than in :mod:`repro.storage`) so low-level codecs
    such as :mod:`repro.index.compression` can raise it without importing
    the storage layer; :mod:`repro.storage` re-exports it for callers.
    """


class EmptyContextError(QueryError):
    """Raised when a context specification matches no documents.

    Context-sensitive statistics are undefined over an empty context
    (``|D_P| = 0`` would divide by zero in ``avgdl_P``), so the engine
    rejects such queries explicitly instead of returning NaN scores.
    """


class ViewError(ReproError):
    """Raised for invalid materialized-view definitions or lookups."""


class ViewNotUsableError(ViewError):
    """Raised when a view is asked to answer a statistic it cannot cover.

    Mirrors the usability conditions of Theorem 4.1: the view must carry the
    statistic's parameter column and the context must satisfy ``P ⊆ K``.
    """


class SelectionError(ReproError):
    """Raised when view selection cannot satisfy its constraints.

    The common cause is a single predicate ``m`` with
    ``ContextSize({m}) ≥ T_C`` but ``ViewSize(V_{m}) > T_V`` — no view of
    bounded size can cover it, so Problem 5.1 is infeasible as stated.
    """


class MiningError(ReproError):
    """Raised by association-rule miners on invalid inputs or budgets."""


class BudgetExceededError(MiningError):
    """Raised when a miner exceeds its configured work budget.

    Section 6.2 reports that Apriori/FP-growth are infeasible at PubMed
    scale ("it would take weeks"); the budget mechanism lets benches
    demonstrate this without actually waiting weeks.
    """

    def __init__(self, algorithm: str, work_done: int, budget: int):
        self.algorithm = algorithm
        self.work_done = work_done
        self.budget = budget
        super().__init__(
            f"{algorithm} exceeded its work budget: {work_done} > {budget} work units"
        )


class DataGenerationError(ReproError):
    """Raised when synthetic-data generators receive inconsistent settings."""
