"""Command-line interface: generate → index → select → search.

The stages mirror how the paper's system would be deployed::

    python -m repro generate --docs 8000 --seed 7 --out corpus.json.gz
    python -m repro index    --corpus corpus.json.gz --out index.json.gz
    python -m repro select   --index index.json.gz --t-c-percent 1 \
                             --t-v 1024 --out catalog.json.gz
    python -m repro search   --index index.json.gz --catalog catalog.json.gz \
                             "pancreas leukemia | DigestiveSystem"
    python -m repro stats    --index index.json.gz --catalog catalog.json.gz

``explain`` prints the planner's decision record for a query — the
logical plan, every candidate path with its predicted cost, the chosen
path, and predicted vs. actual operation counts (``--path`` forces a
path)::

    python -m repro explain --index index.json.gz --catalog catalog.json.gz \
                            "pancreas leukemia | DigestiveSystem"

``search`` accepts ``--conventional`` for the baseline ranking,
``--disjunctive`` for OR-semantics top-k, and ``--model`` to pick the
ranking function.  ``batch`` evaluates a whole query file (one query
per line) through the :class:`~repro.core.engine.BatchExecutor`,
sharing context materialisations and posting columns across queries::

    python -m repro batch --index index.json.gz --queries workload.txt

``index --shards N`` partitions the collection and writes a sharded
index (manifest + one file per shard); ``search``/``batch``/``stats``
auto-detect sharded artefacts and run the parallel
:class:`~repro.core.sharded_engine.ShardedEngine` (``--executor`` picks
the backend).  A flat index can also be re-sharded at load time with
``search --shards N``.

``serve`` runs the asyncio query service (JSON lines over TCP) with
micro-batching, admission control, deadlines, and the serving cache;
``bench-serve`` starts a server in-process and drives it with the
closed-loop load generator::

    python -m repro serve --index index.json.gz --catalog catalog.json.gz \
                          --port 7070
    python -m repro bench-serve --index index.json.gz \
                          --queries workload.txt --threads 8

``serve --adaptive`` adds continuous workload-adaptive view selection:
served queries feed a bounded decayed workload recorder, a background
thread re-runs workload-driven selection when coverage drops (or the
collection grows), and the new catalog is hot-swapped atomically —
rankings are unchanged, only cost.  ``--save-catalog`` persists the
final catalog with its hot-swap generation and reselection stats, which
``info --catalog`` reports back::

    python -m repro serve --index index.json.gz --adaptive \
                          --adaptive-budget 4096 --save-catalog cat.json.gz
    python -m repro info  --catalog cat.json.gz

``worker`` and ``route`` run the distributed serving tier: each index
shard behind its own worker process, with a router scatter-gathering
queries across replica groups (rankings bit-identical to the in-process
sharded engine) and failing over on worker loss.  A new replica
bootstraps its artefact from a peer with ``--bootstrap-from``::

    python -m repro worker --index idx.shard0 --shard-id 0 --port 7101
    python -m repro route  --cluster cluster.json --port 7070
    python -m repro worker --index copy.d --shard-id 0 \
                           --bootstrap-from 127.0.0.1:7101 --port 7103

A **segmented index directory** (the mutable lifecycle form: WAL +
immutable segments + manifest) is managed with ``ingest``, ``compact``
and ``info``, and is accepted by every ``--index`` flag — loading one
performs crash recovery (manifest load + WAL replay) and serves through
snapshot-isolated engines::

    python -m repro ingest  --index idx.d --corpus corpus.json.gz --flush
    python -m repro compact --index idx.d --full
    python -m repro info    --index idx.d
    python -m repro search  --index idx.d "pancreas | DigestiveSystem"

Operational failures (missing or corrupt artefacts, bad queries, ports
in use) exit with code 2 and a one-line message on stderr, not a
traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import __version__
from .core.engine import BatchExecutor, ContextSearchEngine
from .errors import ReproError
from .core.ranking import ALL_RANKING_FUNCTIONS
from .core.sharded_engine import ShardedEngine
from .data.corpus import CorpusConfig, generate_corpus
from .index.sharded import ShardedInvertedIndex
from .selection.hybrid import select_views
from .storage import (
    load_any_index,
    load_catalog,
    load_catalog_info,
    load_documents,
    load_index,
    save_catalog,
    save_documents,
    save_index,
    save_sharded_index,
)
from .views.sharding import replicate_catalog


def _cmd_generate(args: argparse.Namespace) -> int:
    config = CorpusConfig(
        num_docs=args.docs,
        seed=args.seed,
        vocabulary_size=args.vocabulary,
    )
    corpus = generate_corpus(config)
    save_documents(corpus.documents, args.out)
    print(
        f"wrote {len(corpus)} documents "
        f"({len(corpus.ontology)} ontology terms) to {args.out}"
    )
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from .index.inverted_index import build_index

    documents = load_documents(args.corpus)
    fmt = getattr(args, "format", 4)
    codec = "binary-v4" if fmt == 4 else f"json-v{fmt}"
    if args.shards > 1:
        sharded = ShardedInvertedIndex.build(
            documents, args.shards, partitioner=args.partitioner
        )
        save_sharded_index(sharded, args.out, format=fmt)
        sizes = [shard.index.num_docs for shard in sharded.shards]
        print(
            f"indexed {sharded.num_docs} documents into {args.shards} "
            f"{args.partitioner}-partitioned shards {sizes} "
            f"({codec}) -> {args.out}"
        )
        return 0
    index = build_index(documents)
    save_index(index, args.out, format=fmt)
    print(
        f"indexed {index.num_docs} documents: "
        f"{len(index.vocabulary)} content terms, "
        f"{len(index.predicate_vocabulary)} predicates "
        f"({codec}) -> {args.out}"
    )
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    try:
        t_c = max(int(index.num_docs * args.t_c_percent / 100.0), 1)
        catalog, report = select_views(
            index, t_c=t_c, t_v=args.t_v, strategy=args.strategy
        )
        save_catalog(catalog, args.out)
    finally:
        index.close()
    stats = catalog.stats()
    print(
        f"selected {report.num_views} views at T_C={t_c}, T_V={args.t_v} "
        f"({report.views_from_decomposition} decomposition, "
        f"{report.views_from_mining} mining); "
        f"{stats.total_tuples} tuples, "
        f"{stats.total_storage_bytes / 1e6:.2f} MB -> {args.out}"
    )
    return 0


def _load_engine(args: argparse.Namespace):
    """Build the right engine for ``--index``: flat, sharded, or lifecycle.

    A sharded artefact always gets the :class:`ShardedEngine`; a flat one
    gets it only when ``--shards N`` asks for load-time re-sharding.  A
    segmented index *directory* gets a
    :class:`~repro.lifecycle.engine.LifecycleEngine` over the recovered
    index (``--shards N`` makes its per-snapshot engines sharded).  A
    persisted single-collection catalog is re-materialised per shard
    (definitions replicate; tuples do not).

    Returns ``(engine, needs_close)`` — engines owning worker pools or a
    WAL handle must be closed by the caller.
    """
    from .lifecycle import LifecycleEngine, SegmentedIndex

    index = load_any_index(args.index)
    shards = getattr(args, "shards", 0) or 0
    ranking = ALL_RANKING_FUNCTIONS[args.model]()
    catalog = load_catalog(args.catalog) if args.catalog else None
    if isinstance(index, SegmentedIndex):
        engine = LifecycleEngine(
            index,
            ranking=ranking,
            catalog=catalog,
            num_shards=shards if shards > 1 else 0,
            partitioner=getattr(args, "partitioner", "hash"),
            executor=getattr(args, "executor", "serial"),
        )
        return engine, True
    if isinstance(index, ShardedInvertedIndex):
        sharded = index
    elif shards > 1:
        sharded = ShardedInvertedIndex.from_index(
            index, shards, partitioner=args.partitioner
        )
    else:
        sharded = None
    if sharded is not None:
        catalogs = replicate_catalog(sharded, catalog) if catalog else None
        engine = ShardedEngine(
            sharded,
            ranking=ranking,
            catalogs=catalogs,
            executor=args.executor,
        )
        return engine, True
    # Flat engines own the loaded index's resources (a v4 artefact holds
    # an mmap), so the caller must close them too.
    return ContextSearchEngine(index, ranking=ranking, catalog=catalog), True


def _engine_label(engine) -> str:
    if hasattr(engine, "lifecycle_info"):
        return "lifecycle"
    if hasattr(engine, "sharded_index"):
        return "sharded"
    return "flat"


def _cmd_search(args: argparse.Namespace) -> int:
    engine, needs_close = _load_engine(args)

    if args.conventional:
        results = engine.search_conventional(args.query, top_k=args.top_k)
    elif args.disjunctive:
        results = engine.search_disjunctive(
            args.query,
            top_k=args.top_k,
            block_max=getattr(args, "block_max", "on") == "on",
        )
    else:
        results = engine.search(args.query, top_k=args.top_k)

    mode = (
        "conventional"
        if args.conventional
        else "disjunctive" if args.disjunctive else "context-sensitive"
    )
    print(f"{mode} results for: {args.query}")
    if not results.hits:
        print("  (no matches)")
    for rank, hit in enumerate(results.hits, start=1):
        print(f"  {rank:>3}. {hit.external_id}  score={hit.score:.4f}")
    report = results.report
    extra = (
        f" shards={engine.sharded_index.num_shards}"
        f" executor={engine.executor_name}"
        if hasattr(engine, "sharded_index")
        else ""
    )
    print(
        f"path={report.resolution.path} "
        f"context={report.context_size} "
        f"elapsed={report.elapsed_seconds * 1000:.1f}ms "
        f"model_cost={report.counter.model_cost}"
        f"{extra}"
    )
    if needs_close:
        engine.close()
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Print the optimizer's decision record for one query.

    Runs the query for real (the plan's ``actual`` counter is the live
    execution counter), then renders the logical tree, every candidate
    path with its predicted cost, the chosen path, and predicted vs.
    actual operation counts.  For sharded indexes the per-shard choices
    are listed too.
    """
    engine, needs_close = _load_engine(args)
    mode = (
        "conventional"
        if args.conventional
        else "disjunctive" if args.disjunctive else "context"
    )
    results = engine.explain(
        args.query,
        top_k=args.top_k,
        mode=mode,
        path=args.path,
        block_max=getattr(args, "block_max", "on") == "on",
    )
    report = results.report
    print(f"explain: {args.query}")
    if report.plan is not None:
        print(report.plan.render())
    if report.topk is not None:
        topk = report.topk
        print(
            f"top-k pruning: block_max="
            f"{'on' if topk.get('block_max') else 'off'} "
            f"scored={topk.get('candidates_scored')}"
            f"/{topk.get('candidates_seen')} "
            f"pruned={topk.get('candidates_pruned')} "
            f"blocks_considered={topk.get('blocks_considered')} "
            f"blocks_skipped={topk.get('blocks_skipped')}"
        )
    if report.per_shard:
        print("per-shard execution:")
        for shard in report.per_shard:
            print(
                f"  shard {shard.shard_id}: path={shard.path} "
                f"predicted={shard.predicted_cost} "
                f"actual={shard.counter.model_cost} "
                f"results={shard.result_size}"
            )
    print(
        f"path={report.resolution.path} "
        f"context={report.context_size} "
        f"results={report.result_size} "
        f"elapsed={report.elapsed_seconds * 1000:.1f}ms"
    )
    if needs_close:
        engine.close()
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    engine, needs_close = _load_engine(args)

    with open(args.queries, "r", encoding="utf-8") as handle:
        queries = [line.strip() for line in handle if line.strip()]
    if not queries:
        print(f"no queries in {args.queries}", file=sys.stderr)
        return 1

    if hasattr(engine, "search_many"):
        # The sharded and lifecycle engines run their own batch fan-out;
        # the thread-pool BatchExecutor is the flat-index path.
        report = engine.search_many(queries, top_k=args.top_k, mode=args.mode)
    else:
        executor = BatchExecutor(engine, max_workers=args.workers)
        report = executor.run(queries, top_k=args.top_k, mode=args.mode)
    if needs_close:
        engine.close()

    for outcome in report.outcomes:
        if outcome.ok:
            top = outcome.results.hits[0] if outcome.results.hits else None
            head = (
                f"{top.external_id} ({top.score:.4f})" if top else "(no matches)"
            )
            print(
                f"ok    {outcome.query}  "
                f"hits={len(outcome.results.hits)} top={head}"
            )
        else:
            print(f"error {outcome.query}  {outcome.error}")
    total = report.aggregate_counter()
    print(
        f"batch: {len(report)} queries mode={report.mode} "
        f"workers={report.workers} "
        f"contexts={report.distinct_contexts} "
        f"shared_hits={report.shared_context_hits} "
        f"elapsed={report.elapsed_seconds * 1000:.1f}ms "
        f"model_cost={total.model_cost}"
    )
    return 1 if report.errors and not any(o.ok for o in report.outcomes) else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .lifecycle import SegmentedIndex

    index = load_any_index(args.index)
    print(f"index: {args.index}")
    if isinstance(index, SegmentedIndex):
        info = index.info()
        snapshot = index.snapshot()
        index.close()
        print(
            f"  segmented: {len(info['segments'])} segments "
            f"(version={info['version']}, "
            f"memtable={info['memtable_docs']} docs, "
            f"tombstones={info['tombstones']}, "
            f"wal_records={info['wal_records']})"
        )
        print(f"  documents: {snapshot.num_docs}")
        print(f"  total length: {snapshot.total_length} tokens")
        print(f"  avg doc length: {snapshot.average_document_length():.1f}")
        print(f"  content terms: {len(snapshot.vocabulary)}")
        print(f"  predicates: {len(snapshot.predicate_vocabulary)}")
        return 0
    if isinstance(index, ShardedInvertedIndex):
        sizes = [shard.index.num_docs for shard in index.shards]
        print(
            f"  shards: {index.num_shards} "
            f"({index.partitioner.name}-partitioned) sizes={sizes}"
        )
        print(f"  documents: {index.num_docs}")
        print(f"  total length: {index.total_length} tokens")
        print(f"  avg doc length: {index.average_document_length():.1f}")
        index.close()
        return 0
    print(f"  documents: {index.num_docs}")
    print(f"  total length: {index.total_length} tokens")
    print(f"  avg doc length: {index.average_document_length():.1f}")
    print(f"  content terms: {len(index.vocabulary)}")
    print(f"  predicates: {len(index.predicate_vocabulary)}")
    index.close()
    if args.catalog:
        catalog = load_catalog(args.catalog)
        stats = catalog.stats()
        print(f"catalog: {args.catalog}")
        print(f"  views: {stats.num_views}")
        print(f"  tuples: total={stats.total_tuples} max={stats.max_tuples}")
        print(f"  storage: {stats.total_storage_bytes / 1e6:.2f} MB")
    return 0


def _open_segmented(path: str, must_exist: bool = True, storage_format: int = 4):
    """Open a segmented index directory for a lifecycle command."""
    from pathlib import Path

    from .lifecycle import SegmentedIndex
    from .storage import StorageError

    if must_exist and not (Path(path) / "manifest.json").exists():
        raise StorageError(
            f"not a segmented index directory (no manifest): {path}"
        )
    return SegmentedIndex.open(path, storage_format=storage_format)


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Append documents to a segmented index (WAL + memtable)."""
    documents = load_documents(args.corpus)
    index = _open_segmented(
        args.index, must_exist=False,
        storage_format=getattr(args, "format", 4),
    )
    try:
        index.add_documents(documents)
        if args.flush:
            index.flush()
        info = index.info()
    finally:
        index.close()
    print(
        f"ingested {len(documents)} documents into {args.index} "
        f"(version={info['version']}, live_docs={info['live_docs']}, "
        f"segments={len(info['segments'])}, "
        f"wal_records={info['wal_records']})"
    )
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    """Merge segments and physically drop deleted documents."""
    index = _open_segmented(
        args.index, storage_format=getattr(args, "format", 4)
    )
    try:
        report = index.compact(full=args.full)
        info = index.info()
    finally:
        index.close()
    if report.changed:
        merged = ", ".join(
            "+".join(run) for run in report.merged
        ) or "(none)"
        print(
            f"compacted {args.index}: {report.segments_before} -> "
            f"{report.segments_after} segments (merged {merged}), "
            f"dropped {report.dropped_documents} deleted documents, "
            f"version={info['version']}"
        )
    else:
        print(f"nothing to compact in {args.index}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    """Print a segmented index's manifest/WAL/segment state as JSON,
    and/or a saved catalog's provenance (views, hot-swap generation,
    last-reselection stats)."""
    import json

    if not args.index and not args.catalog:
        print("error: info needs --index and/or --catalog", file=sys.stderr)
        return 2
    payload: dict = {}
    if args.index:
        index = _open_segmented(args.index)
        try:
            payload = index.info()
        finally:
            index.close()
    if args.catalog:
        payload["catalog"] = load_catalog_info(args.catalog)
    # The unified coherence token (repro.core.backend.VersionVector):
    # data epoch from the index's clock, catalog generation from the
    # saved catalog's provenance; placement only moves on a router.
    payload["version_vector"] = {
        "epoch": payload.get("version", 0),
        "catalog_generation": (payload.get("catalog") or {}).get(
            "generation", 0
        ),
        "placement_generation": 0,
    }
    print(json.dumps(payload, indent=2))
    return 0


def _service_config(args: argparse.Namespace):
    from .service import ServiceConfig

    return ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers or 0,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
        degrade_depth=args.degrade_depth,
        default_timeout_ms=args.timeout_ms,
        default_top_k=args.top_k,
        cache_entries=args.cache_entries,
        cache_enabled=not args.no_cache,
        coalesce=not args.no_coalesce,
    )


_ADAPTIVE_FLAGS = (
    "adaptive_interval",
    "adaptive_min_queries",
    "adaptive_coverage",
    "adaptive_growth",
    "adaptive_budget",
    "reference_index",
)


def _check_adaptive_args(args: argparse.Namespace) -> None:
    """Adaptive knobs without ``--adaptive`` are a configuration bug the
    operator should hear about, not silently-ignored flags."""
    if getattr(args, "adaptive", False):
        return
    for flag in _ADAPTIVE_FLAGS:
        if getattr(args, flag, None) is not None:
            raise ReproError(
                f"--{flag.replace('_', '-')} requires --adaptive"
            )
    if getattr(args, "save_catalog", None):
        raise ReproError("--save-catalog requires --adaptive")


def _adaptive_controller(args: argparse.Namespace, engine, metrics):
    """Build the workload recorder + reselection controller for
    ``serve --adaptive`` (flat, re-sharded, and lifecycle engines)."""
    from .index.inverted_index import InvertedIndex
    from .selection.adaptive import IncrementalReselector
    from .service import AdaptiveConfig, AdaptiveSelectionController

    config = AdaptiveConfig(
        interval_seconds=(
            args.adaptive_interval
            if args.adaptive_interval is not None
            else 30.0
        ),
        min_queries=(
            args.adaptive_min_queries
            if args.adaptive_min_queries is not None
            else 32
        ),
        coverage_threshold=(
            args.adaptive_coverage
            if args.adaptive_coverage is not None
            else 0.8
        ),
        growth_threshold=(
            args.adaptive_growth if args.adaptive_growth is not None else 0.2
        ),
    )
    reference = None
    if getattr(engine, "needs_reference_index", False):
        # Selection needs the whole collection; per-shard sub-indexes
        # (and the router, which holds no index at all) cannot provide
        # it.  A flat artefact re-sharded at load time still has the
        # flat form on disk — reload it as the reference; the router
        # takes it explicitly via --reference-index.
        source = getattr(args, "reference_index", None) or getattr(
            args, "index", None
        )
        if not source:
            raise ReproError(
                "route --adaptive needs --reference-index (the "
                "whole-collection index artefact view selection scans)"
            )
        reference = load_any_index(source)
        if not isinstance(reference, InvertedIndex):
            reference.close()
            raise ReproError(
                "--adaptive over a sharded artefact is not "
                "supported: view selection needs the whole collection; "
                "point it at the flat index artefact instead"
            )
    reselector = IncrementalReselector(
        storage_budget=(
            args.adaptive_budget if args.adaptive_budget is not None else 4096
        )
    )
    controller = AdaptiveSelectionController(
        engine,
        reselector,
        config=config,
        metrics=metrics,
        reference_index=reference,
    )
    return controller, reference


def _save_adaptive_catalog(args: argparse.Namespace, engine, controller) -> None:
    """Persist the serving catalog with its hot-swap provenance."""
    catalog = getattr(engine, "catalog", None)
    if catalog is None:
        print(
            f"note: no catalog to save to {args.save_catalog} "
            "(engine has none installed)",
            file=sys.stderr,
        )
        return
    selection = (
        controller.last_report.to_dict()
        if controller is not None and controller.last_report is not None
        else None
    )
    save_catalog(
        catalog,
        args.save_catalog,
        generation=getattr(engine, "catalog_generation", 0),
        selection=selection,
    )
    print(
        f"saved catalog ({len(catalog)} views, "
        f"generation={getattr(engine, 'catalog_generation', 0)}) "
        f"-> {args.save_catalog}"
    )


def _restore_workload_state(args: argparse.Namespace, recorder) -> None:
    """Load a saved workload snapshot into the serving recorder, if the
    state file exists (a fresh deployment starts empty, not with an
    error)."""
    from pathlib import Path

    from .service import load_workload_state

    if not Path(args.workload_state).exists():
        print(f"workload state {args.workload_state} not found; "
              "starting with an empty workload")
        return
    recorder.restore(load_workload_state(args.workload_state))
    print(
        f"restored workload state from {args.workload_state} "
        f"({recorder.distinct_contexts} contexts, "
        f"{recorder.total_recorded} queries recorded)"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the query service in the foreground until interrupted."""
    import asyncio

    from .service import QueryServer, WorkloadRecorder, save_workload_state

    _check_adaptive_args(args)
    engine, needs_close = _load_engine(args)
    controller = reference = recorder = None
    try:
        if args.save_catalog and not hasattr(engine, "catalog"):
            raise ReproError(
                "--save-catalog needs an engine with a single-collection "
                "catalog (flat or lifecycle, not sharded)"
            )
        server = QueryServer(engine, _service_config(args))
        if args.adaptive:
            controller, reference = _adaptive_controller(
                args, engine, server.service.metrics
            )
            server.service.recorder = controller.recorder
            server.service.adaptive = controller
        if args.workload_state:
            # With --adaptive the controller owns the recorder; without
            # it, recording still runs so the state keeps accumulating
            # across restarts either way.
            recorder = server.service.recorder
            if recorder is None:
                recorder = WorkloadRecorder()
                server.service.recorder = recorder
            _restore_workload_state(args, recorder)

        async def run() -> None:
            host, port = await server.start()
            adaptive_note = (
                f", adaptive every {controller.config.interval_seconds:g}s"
                if controller is not None
                else ""
            )
            print(f"serving on {host}:{port} "
                  f"({_engine_label(engine)} engine, "
                  f"workers={server.config.effective_workers()}, "
                  f"max_batch={server.config.max_batch}, "
                  f"max_pending={server.config.max_pending}"
                  f"{adaptive_note})")
            if controller is not None:
                controller.start()
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await server.stop()

        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            print("shutting down")
        if args.save_catalog:
            _save_adaptive_catalog(args, engine, controller)
        if args.workload_state and recorder is not None:
            save_workload_state(recorder, args.workload_state)
            print(
                f"saved workload state "
                f"({recorder.distinct_contexts} contexts) "
                f"-> {args.workload_state}"
            )
    finally:
        if controller is not None:
            controller.stop()
        if reference is not None:
            reference.close()
        if needs_close:
            engine.close()
    return 0


def _serve_until_interrupted(server, banner: str) -> None:
    """Start ``server``, print the bound address, run until Ctrl-C."""
    import asyncio

    async def run() -> None:
        host, port = await server.start()
        print(banner.format(host=host, port=port))
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one cluster shard worker in the foreground.

    With ``--bootstrap-from`` the worker first ships the peer replica's
    sealed artefact files into ``--index`` (treated as a directory) and
    serves the shipped copy — no re-ingest.
    """
    from pathlib import Path

    from .service import QueryServer
    from .service.cluster import fetch_artifact
    from .service.cluster.worker import worker_service_factory
    from .storage import load_shard

    index_path = Path(args.index)
    if args.bootstrap_from:
        index_path, copied = fetch_artifact(
            args.bootstrap_from, index_path,
            timeout=args.bootstrap_timeout,
        )
        print(
            f"bootstrapped shard artefact from {args.bootstrap_from} "
            f"({copied} files shipped) -> {index_path}"
        )
    ranking = ALL_RANKING_FUNCTIONS[args.model]()
    shard = load_shard(index_path, shard_id=args.shard_id)
    engine = ContextSearchEngine(shard.index, ranking)
    try:
        server = QueryServer(
            engine,
            _service_config(args),
            service_class=worker_service_factory(
                shard, ranking, artifact=index_path
            ),
        )
        _serve_until_interrupted(
            server,
            f"shard worker {args.shard_id} serving {index_path} "
            f"({shard.index.num_docs} docs, {ranking.name}) "
            "on {host}:{port}",
        )
    finally:
        engine.close()
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    """Run the cluster query router in the foreground.

    With ``--adaptive`` the router closes the selection loop cluster-wide:
    served queries feed the workload recorder, reselection runs over the
    ``--reference-index`` (the whole-collection artefact), and each new
    catalog is shipped to every shard worker over the ``install_catalog``
    op — workers re-materialise partial views locally and adopt the
    router's catalog generation, so the whole cluster reports one
    version vector.
    """
    import asyncio

    from .service import QueryServer, load_cluster_config
    from .service.cluster import router_service_factory

    _check_adaptive_args(args)
    cluster = load_cluster_config(args.cluster)
    ranking = ALL_RANKING_FUNCTIONS[args.model]()
    server = QueryServer(
        None,
        _service_config(args),
        service_class=router_service_factory(cluster, ranking),
    )
    controller = reference = None
    try:
        if args.adaptive:
            controller, reference = _adaptive_controller(
                args, server.service, server.service.metrics.base
            )
            server.service.recorder = controller.recorder
            server.service.adaptive = controller
            server.service._predicate_analyzer = reference.predicate_analyzer

        async def run() -> None:
            host, port = await server.start()
            adaptive_note = (
                f", adaptive every {controller.config.interval_seconds:g}s"
                if controller is not None
                else ""
            )
            print(
                f"routing {cluster.num_shards} shards x "
                f"{cluster.replication} replicas ({ranking.name}) "
                f"on {host}:{port}{adaptive_note}"
            )
            # The controller bridges install_catalog onto the serving
            # loop; start it only once the server has captured it.
            if controller is not None:
                controller.start()
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await server.stop()

        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            print("shutting down")
    finally:
        if controller is not None:
            controller.stop()
        if reference is not None:
            reference.close()
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    """Start an in-process server and drive it with the load generator.

    With ``--target`` no server is started: the load generator drives
    the given already-running endpoint(s) — e.g. a cluster router, or
    several routers round-robin — and reports per-endpoint latency.
    """
    import json

    from .service import ServerThread, run_load

    with open(args.queries, "r", encoding="utf-8") as handle:
        queries = [line.strip() for line in handle if line.strip()]
    if not queries:
        print(f"no queries in {args.queries}", file=sys.stderr)
        return 1

    if args.target:
        from .service.cluster import parse_address

        endpoints = [parse_address(t) for t in args.target]
        report = run_load(
            endpoints,
            queries,
            threads=args.threads,
            top_k=args.top_k,
            mode=args.mode,
            timeout_ms=args.timeout_ms,
            repeat=args.repeat,
        )
        snapshot = None
    else:
        if not args.index:
            print("error: bench-serve needs --index (or --target)",
                  file=sys.stderr)
            return 2
        engine, needs_close = _load_engine(args)
        try:
            with ServerThread(engine, _service_config(args)) as st:
                report = run_load(
                    st.address,
                    queries,
                    threads=args.threads,
                    top_k=args.top_k,
                    mode=args.mode,
                    timeout_ms=args.timeout_ms,
                    repeat=args.repeat,
                )
                snapshot = st.service.metrics.snapshot()
        finally:
            if needs_close:
                engine.close()

    print(
        f"bench-serve: {report.ok}/{report.sent} ok "
        f"(errors={report.errors} shed={report.shed} "
        f"timeouts={report.timeouts}) in {report.elapsed_seconds:.2f}s"
    )
    print(
        f"  throughput: {report.qps:.1f} qps  "
        f"latency p50={report.latency_ms(50):.1f}ms "
        f"p95={report.latency_ms(95):.1f}ms "
        f"p99={report.latency_ms(99):.1f}ms"
    )
    if snapshot is not None:
        batches = snapshot["batches"]
        print(
            f"  batches: {batches['count']} "
            f"(mean_size={batches['mean_size']:.2f} "
            f"max_size={batches['max_size']} "
            f"coalesced={batches['coalesced_requests']})"
        )
    if len(report.endpoints) > 1:
        for addr, stats in sorted(report.endpoints.items()):
            print(
                f"  endpoint {addr}: {stats.ok}/{stats.sent} ok "
                f"p50={stats.latency_ms(50):.1f}ms "
                f"p99={stats.latency_ms(99):.1f}ms"
            )
    if args.out:
        payload = {"load": report.to_dict(), "server": snapshot}
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"  wrote {args.out}")
    return 0 if report.ok and not report.errors else 1


def _add_service_options(p: argparse.ArgumentParser) -> None:
    """The serving knobs shared by ``serve`` and ``bench-serve``."""
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = pick an ephemeral port)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker threads (default: min(8, cpu count))")
    p.add_argument("--max-batch", type=int, default=16,
                   help="coalescer flush size")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="coalescer window: max extra latency for batching")
    p.add_argument("--max-pending", type=int, default=256,
                   help="admission cap; past it requests are shed")
    p.add_argument("--degrade-depth", type=int, default=None,
                   help="queue depth that forces the cheap planner path "
                        "(default: max-pending / 2)")
    p.add_argument("--timeout-ms", type=float, default=None,
                   help="default per-request deadline")
    p.add_argument("--top-k", type=int, default=10)
    p.add_argument("--cache-entries", type=int, default=1024,
                   help="serving-cache capacity (full query results)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the serving cache")
    p.add_argument("--no-coalesce", action="store_true",
                   help="disable micro-batching (batches of one)")


def _add_sharding_options(p: argparse.ArgumentParser) -> None:
    """Options shared by the commands that can run a sharded engine."""
    p.add_argument("--shards", type=int, default=0,
                   help="re-shard a flat index into N shards at load time "
                        "(sharded artefacts are auto-detected)")
    p.add_argument("--partitioner", choices=("hash", "range"), default="hash")
    p.add_argument("--executor", choices=("auto", "serial", "thread", "fork"),
                   default="auto", help="sharded execution backend")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Context-sensitive ranking for document retrieval "
        "(SIGMOD 2011 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic corpus")
    p.add_argument("--docs", type=int, default=5000)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--vocabulary", type=int, default=4000)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("index", help="build and save an inverted index")
    p.add_argument("--corpus", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--shards", type=int, default=1,
                   help="partition into N shards (1 = flat single index)")
    p.add_argument("--partitioner", choices=("hash", "range"), default="hash")
    p.add_argument("--format", type=int, choices=(3, 4), default=4,
                   help="artefact format: 4 = compressed binary blocks "
                        "(mmap, lazy decode), 3 = legacy JSON")
    p.set_defaults(func=_cmd_index)

    p = sub.add_parser("select", help="select and materialise views")
    p.add_argument("--index", required=True)
    p.add_argument("--t-c-percent", type=float, default=1.0,
                   help="context threshold as %% of the collection (paper: 1)")
    p.add_argument("--t-v", type=int, default=4096,
                   help="view-size threshold in tuples (paper: 4096)")
    p.add_argument("--strategy", choices=("hybrid", "mining"), default="hybrid")
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_select)

    p = sub.add_parser("search", help="run a context-sensitive query")
    p.add_argument("query", help='e.g. "pancreas leukemia | DigestiveSystem"')
    p.add_argument("--index", required=True)
    p.add_argument("--catalog", default=None)
    p.add_argument("--top-k", type=int, default=10)
    p.add_argument("--model", choices=sorted(ALL_RANKING_FUNCTIONS),
                   default="pivoted-tfidf")
    p.add_argument("--conventional", action="store_true",
                   help="baseline ranking (whole-collection statistics)")
    p.add_argument("--disjunctive", action="store_true",
                   help="OR-semantics top-k (MaxScore)")
    p.add_argument("--block-max", choices=("on", "off"), default="on",
                   help="per-block score bounds for top-k skipping "
                        "(rankings are identical either way)")
    _add_sharding_options(p)
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser(
        "explain", help="show the planner's path choice for a query"
    )
    p.add_argument("query", help='e.g. "pancreas leukemia | DigestiveSystem"')
    p.add_argument("--index", required=True)
    p.add_argument("--catalog", default=None)
    p.add_argument("--top-k", type=int, default=10)
    p.add_argument("--model", choices=sorted(ALL_RANKING_FUNCTIONS),
                   default="pivoted-tfidf")
    p.add_argument("--conventional", action="store_true",
                   help="explain the conventional baseline")
    p.add_argument("--disjunctive", action="store_true",
                   help="explain OR-semantics top-k")
    p.add_argument("--path", choices=("auto", "views", "straightforward"),
                   default="auto",
                   help="force a physical path instead of cost-based choice")
    p.add_argument("--block-max", choices=("on", "off"), default="on",
                   help="per-block score bounds for top-k skipping "
                        "(rankings are identical either way)")
    _add_sharding_options(p)
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("batch", help="evaluate a file of queries as one batch")
    p.add_argument("--index", required=True)
    p.add_argument("--catalog", default=None)
    p.add_argument("--queries", required=True,
                   help="text file, one 'keywords | predicates' query per line")
    p.add_argument("--top-k", type=int, default=10)
    p.add_argument("--model", choices=sorted(ALL_RANKING_FUNCTIONS),
                   default="pivoted-tfidf")
    p.add_argument("--mode", choices=("context", "conventional", "disjunctive"),
                   default="context")
    p.add_argument("--workers", type=int, default=None,
                   help="thread-pool size (default: min(8, cpu count))")
    _add_sharding_options(p)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser("stats", help="print index/catalog statistics")
    p.add_argument("--index", required=True)
    p.add_argument("--catalog", default=None)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "ingest",
        help="append documents to a segmented index directory (WAL-backed)",
    )
    p.add_argument("--index", required=True,
                   help="segmented index directory (created if absent)")
    p.add_argument("--corpus", required=True,
                   help="documents file written by 'generate'")
    p.add_argument("--flush", action="store_true",
                   help="seal the memtable into an immutable segment "
                        "after ingesting")
    p.add_argument("--format", type=int, choices=(3, 4), default=4,
                   help="format for newly sealed segment files: "
                        "4 = binary blocks, 3 = gzipped JSON")
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser(
        "compact",
        help="merge segments and drop tombstoned documents",
    )
    p.add_argument("--index", required=True,
                   help="segmented index directory")
    p.add_argument("--full", action="store_true",
                   help="merge everything into one segment "
                        "(default: size-tiered adjacent runs)")
    p.add_argument("--format", type=int, choices=(3, 4), default=4,
                   help="format for segment files the merge writes: "
                        "4 = binary blocks, 3 = gzipped JSON")
    p.set_defaults(func=_cmd_compact)

    p = sub.add_parser(
        "info",
        help="print a segmented index's segment/WAL/version state "
             "and/or a saved catalog's provenance",
    )
    p.add_argument("--index", default=None,
                   help="segmented index directory")
    p.add_argument("--catalog", default=None,
                   help="saved catalog: reports views, hot-swap generation, "
                        "and last-reselection stats")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser(
        "serve", help="run the asyncio query service (JSON lines over TCP)"
    )
    p.add_argument("--index", required=True)
    p.add_argument("--catalog", default=None)
    p.add_argument("--model", choices=sorted(ALL_RANKING_FUNCTIONS),
                   default="pivoted-tfidf")
    p.add_argument("--adaptive", action="store_true",
                   help="continuously reselect views from the live workload "
                        "and hot-swap the catalog (background thread)")
    p.add_argument("--adaptive-interval", type=float, default=None,
                   help="seconds between trigger checks (default: 30)")
    p.add_argument("--adaptive-min-queries", type=int, default=None,
                   help="new queries before the coverage trigger can fire "
                        "(default: 32)")
    p.add_argument("--adaptive-coverage", type=float, default=None,
                   help="reselect when the catalog covers less than this "
                        "fraction of the recorded workload (default: 0.8)")
    p.add_argument("--adaptive-growth", type=float, default=None,
                   help="reselect when the collection grew by this fraction "
                        "(default: 0.2)")
    p.add_argument("--adaptive-budget", type=int, default=None,
                   help="view storage budget in tuples (default: 4096)")
    p.add_argument("--save-catalog", default=None,
                   help="on shutdown, save the serving catalog with its "
                        "hot-swap generation and reselection stats")
    p.add_argument("--workload-state", default=None,
                   help="JSON file to restore the workload recorder from "
                        "at startup and save it to at shutdown, so the "
                        "observed workload survives restarts")
    _add_service_options(p)
    _add_sharding_options(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "worker",
        help="run one cluster shard worker (JSON lines over TCP)",
    )
    p.add_argument("--index", required=True,
                   help="per-shard artefact file written by "
                        "'index --shards N' — or, with --bootstrap-from, "
                        "the directory to ship the peer's artefact into")
    p.add_argument("--shard-id", type=int, default=0,
                   help="this worker's logical shard id in the cluster")
    p.add_argument("--model", choices=sorted(ALL_RANKING_FUNCTIONS),
                   default="pivoted-tfidf")
    p.add_argument("--bootstrap-from", default=None,
                   help="peer replica host:port to ship sealed artefact "
                        "files from (no re-ingest)")
    p.add_argument("--bootstrap-timeout", type=float, default=30.0,
                   help="per-request timeout for segment shipping")
    _add_service_options(p)
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "route",
        help="run the cluster query router over shard workers",
    )
    p.add_argument("--cluster", required=True,
                   help="cluster config JSON (workers, placement, "
                        "failover knobs)")
    p.add_argument("--model", choices=sorted(ALL_RANKING_FUNCTIONS),
                   default="pivoted-tfidf",
                   help="ranking model — must match the workers'")
    p.add_argument("--adaptive", action="store_true",
                   help="continuously reselect views from the routed "
                        "workload and ship each new catalog to every "
                        "shard worker (background thread)")
    p.add_argument("--reference-index", default=None,
                   help="whole-collection index artefact view selection "
                        "scans (required with --adaptive)")
    p.add_argument("--adaptive-interval", type=float, default=None,
                   help="seconds between trigger checks (default: 30)")
    p.add_argument("--adaptive-min-queries", type=int, default=None,
                   help="new queries before the coverage trigger can fire "
                        "(default: 32)")
    p.add_argument("--adaptive-coverage", type=float, default=None,
                   help="reselect when the catalog covers less than this "
                        "fraction of the recorded workload (default: 0.8)")
    p.add_argument("--adaptive-growth", type=float, default=None,
                   help="reselect when the collection grew by this fraction "
                        "(default: 0.2)")
    p.add_argument("--adaptive-budget", type=int, default=None,
                   help="view storage budget in tuples (default: 4096)")
    _add_service_options(p)
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser(
        "bench-serve",
        help="start an in-process server and measure serving throughput",
    )
    p.add_argument("--index", default=None,
                   help="index artefact (omit with --target)")
    p.add_argument("--target", action="append", default=None,
                   help="drive an already-running endpoint (host:port) "
                        "instead of starting a server; repeat for "
                        "round-robin multi-endpoint load")
    p.add_argument("--catalog", default=None)
    p.add_argument("--queries", required=True,
                   help="text file, one 'keywords | predicates' query per line")
    p.add_argument("--model", choices=sorted(ALL_RANKING_FUNCTIONS),
                   default="pivoted-tfidf")
    p.add_argument("--mode", choices=("context", "conventional", "disjunctive"),
                   default="context")
    p.add_argument("--threads", type=int, default=8,
                   help="concurrent load-generator clients")
    p.add_argument("--repeat", type=int, default=1,
                   help="times to replay the query file")
    p.add_argument("--out", default=None,
                   help="write the load + server report as JSON")
    _add_service_options(p)
    _add_sharding_options(p)
    p.set_defaults(func=_cmd_bench_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Operational failures — missing or corrupt artefacts, unparseable
    queries, a port already in use — are reported as one readable line
    on stderr with exit code 2.  Anything else is a bug and keeps its
    traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        target = getattr(exc, "filename", None)
        detail = exc.strerror or str(exc)
        where = f" ({target})" if target else ""
        print(f"error: {detail}{where}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
