"""The swappable catalog reference every planner layer reads through.

Historically each engine froze its :class:`~repro.views.catalog.ViewCatalog`
into its operators at construction time, which made the catalog a
build-time constant.  Continuous workload-adaptive selection needs the
opposite: the catalog is versioned mutable state that a background
reselector replaces while queries are in flight.  :class:`CatalogHandle`
is the one indirection that makes this safe:

* the flat engine, every shard runtime, the :class:`~repro.core.optimizer.
  Optimizer` and the :class:`~repro.core.operators.ViewScan` operator all
  hold the *same* handle and read ``handle.catalog`` per query;
* a swap is a single reference assignment under the handle's lock — a
  query that already grabbed the old catalog object keeps a fully
  consistent (and still exact, hence ranking-identical) view to
  completion, and no reader can ever observe a half-built catalog;
* every swap bumps a **generation** counter.  The serving layer folds the
  generation into its cache epoch, so result-cache entries produced
  under an older catalog are never served after a swap; the planner's
  coverage cache needs no explicit invalidation at all because it lives
  *on* the catalog object and dies with it.

Plain catalogs (or ``None``) passed to engine constructors are wrapped
transparently via :meth:`CatalogHandle.ensure`, so existing call sites
keep working unchanged.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple, Union

from ..core.backend import VersionClock
from .catalog import ViewCatalog

__all__ = ["CatalogHandle"]


class CatalogHandle:
    """A generation-stamped, atomically swappable catalog reference."""

    def __init__(
        self, catalog: Optional[ViewCatalog] = None, generation: int = 0
    ):
        self._lock = threading.Lock()
        self._catalog = catalog
        # The generation is a backend VersionClock so every counter in
        # the system shares one mutation discipline (see
        # repro.core.backend); the handle's lock still covers the
        # (catalog, generation) pair read in get().
        self._clock = VersionClock(generation)

    @staticmethod
    def ensure(
        catalog: Union["CatalogHandle", ViewCatalog, None]
    ) -> "CatalogHandle":
        """Wrap a plain catalog (or ``None``) in a handle; pass handles
        through untouched so co-owners share one swap point."""
        if isinstance(catalog, CatalogHandle):
            return catalog
        return CatalogHandle(catalog)

    @property
    def catalog(self) -> Optional[ViewCatalog]:
        """The current catalog (one reference read — readers grab it once
        per query and keep that object for the whole evaluation)."""
        return self._catalog

    @property
    def generation(self) -> int:
        """How many swaps this handle has seen (0 = the build-time
        catalog)."""
        return self._clock.version

    def get(self) -> Tuple[Optional[ViewCatalog], int]:
        """The (catalog, generation) pair, read consistently."""
        with self._lock:
            return self._catalog, self._clock.version

    def swap(
        self,
        catalog: Optional[ViewCatalog],
        generation: Optional[int] = None,
    ) -> int:
        """Install ``catalog`` and return the new generation.

        The swap is atomic with respect to readers: they see either the
        old object or the new one, never an intermediate state.  The new
        catalog must already be fully built (and exact for the current
        collection) before it is handed here.

        ``generation`` (optional) adopts an externally assigned
        generation instead of bumping by one — the cluster ships the
        router's catalog generation with the catalog so every worker's
        handle reports the same number; the clock never moves backwards.
        """
        with self._lock:
            self._catalog = catalog
            if generation is not None:
                return self._clock.advance_to(generation)
            return self._clock.advance()

    def __repr__(self) -> str:
        catalog = self._catalog
        views = len(catalog) if catalog is not None else 0
        return (
            f"CatalogHandle(generation={self._clock.version}, views={views})"
        )
