"""Per-shard view materialization and catalog replication.

A materialized view ``V_K`` is a GROUP BY over the wide sparse table;
restricting the table to one shard's documents and grouping gives a
*partial* view whose every parameter column (COUNT, SUM) is an exact
partial aggregate.  Replicating the same view **definitions** — keyword
set plus df/tc parameter columns — across shards therefore preserves both
halves of the paper's machinery:

* **usability** (Theorem 4.1) is a syntactic test on the definition, so a
  context covered on one shard is covered on all of them and every shard
  takes the same resolution path;
* **exactness**: per-shard view answers sum to the whole-collection
  answer, because shards partition the documents and the aggregates are
  distributive.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Tuple

from ..index.sharded import ShardedInvertedIndex
from .catalog import ViewCatalog
from .view import materialize_view
from .wide_table import WideSparseTable

# A view definition: (keyword set, df parameter terms, tc parameter terms).
ViewDefinition = Tuple[FrozenSet[str], FrozenSet[str], FrozenSet[str]]


def catalog_definitions(catalog: ViewCatalog) -> List[ViewDefinition]:
    """Extract the replicable definitions of a catalog's views."""
    return [
        (view.keyword_set, view.df_terms, view.tc_terms) for view in catalog
    ]


def materialize_sharded_catalogs(
    sharded_index: ShardedInvertedIndex,
    definitions: Iterable[Sequence[Iterable[str]]],
    caches: Iterable = (),
) -> List[ViewCatalog]:
    """Materialize every definition over every shard — one catalog each.

    ``definitions`` is an iterable of ``(keyword_set, df_terms, tc_terms)``
    triples (e.g. from :func:`catalog_definitions`, or straight from a
    view-selection run).  Returns the per-shard catalogs positionally
    aligned with ``sharded_index.shards``, ready to hand to
    :class:`~repro.core.sharded_engine.ShardedEngine`.

    ``caches`` mirrors :func:`repro.views.maintenance.maintain_catalog`:
    anything with an ``invalidate()`` method (statistics memoisation, the
    query service's result cache) is dropped after the re-materialisation
    — replication is the sharded deployment's catalog mutation point, so
    it must not leave memoised answers from the previous catalog behind.
    """
    definitions = [
        (frozenset(keywords), frozenset(df_terms), frozenset(tc_terms))
        for keywords, df_terms, tc_terms in definitions
    ]
    catalogs: List[ViewCatalog] = []
    for shard in sharded_index.shards:
        table = WideSparseTable.from_index(shard.index)
        catalogs.append(
            ViewCatalog(
                materialize_view(table, keywords, df_terms, tc_terms)
                for keywords, df_terms, tc_terms in definitions
            )
        )
    for cache in caches:
        cache.invalidate()
    return catalogs


def replicate_catalog(
    sharded_index: ShardedInvertedIndex,
    catalog: ViewCatalog,
    caches: Iterable = (),
) -> List[ViewCatalog]:
    """Re-materialize an existing catalog's definitions per shard.

    The single-collection catalog's *tuples* are useless to a shard (they
    aggregate the whole collection); only the definitions replicate.
    ``caches`` is forwarded to :func:`materialize_sharded_catalogs`.
    """
    return materialize_sharded_catalogs(
        sharded_index, catalog_definitions(catalog), caches=caches
    )
