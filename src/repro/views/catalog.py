"""The view catalog: matching queries to usable views (Sections 4.2, 6.3).

At query time each collection-specific statistic is matched against the
catalog first; when several views are usable, the smallest is picked
("the view with the minimal size is picked", Section 6.3).  Statistics no
view can answer are reported back so the engine can fall back to the
straightforward plan for just those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.query import ContextSpecification
from ..core.statistics import StatisticSpec
from ..index.postings import CostCounter
from .view import MaterializedView


@dataclass(frozen=True)
class CatalogStats:
    """Aggregate storage accounting for benches (Section 6.2's table)."""

    num_views: int
    total_tuples: int
    max_tuples: int
    mean_tuples: float
    total_storage_bytes: int
    mean_storage_bytes: float


class ViewCatalog:
    """An ordered collection of materialized views with usability search."""

    # Covering-view lists are memoised per context predicate set; the cap
    # only guards against adversarial workloads with unbounded distinct
    # contexts (real mixes reuse contexts — the premise views pay off on).
    _COVER_CACHE_LIMIT = 4096

    def __init__(self, views: Iterable[MaterializedView] = ()):
        self._views: List[MaterializedView] = list(views)
        self._by_size: Optional[List[MaterializedView]] = None
        self._cover_cache: Dict[frozenset, List[MaterializedView]] = {}

    def __len__(self) -> int:
        return len(self._views)

    def __iter__(self):
        return iter(self._views)

    def add(self, view: MaterializedView) -> None:
        self._views.append(view)
        self._by_size = None
        self._cover_cache.clear()

    def _views_by_size(self) -> List[MaterializedView]:
        """Catalog views in ascending size order (cached; Section 6.3's
        "the view with the minimal size is picked" becomes first-match)."""
        if self._by_size is None:
            self._by_size = sorted(self._views, key=lambda v: v.size)
        return self._by_size

    def _covering_views(
        self, context: ContextSpecification
    ) -> List[MaterializedView]:
        """Views with ``P ⊆ K`` in ascending size order (memoised).

        Coverage depends only on the predicate set and the catalog, and
        workloads re-ask the same contexts constantly, so each distinct
        context pays the catalog scan once.
        """
        key = context.as_set()
        covering = self._cover_cache.get(key)
        if covering is None:
            covering = [
                v for v in self._views_by_size() if v.covers_context(context)
            ]
            if len(self._cover_cache) >= self._COVER_CACHE_LIMIT:
                self._cover_cache.clear()
            self._cover_cache[key] = covering
        return covering

    def find_usable(
        self, spec: StatisticSpec, context: ContextSpecification
    ) -> Optional[MaterializedView]:
        """Smallest view usable for ``spec`` in ``context`` (Theorem 4.1)."""
        for view in self._covering_views(context):
            if view.has_column_for(spec):
                return view
        return None

    def find_usable_many(
        self,
        specs: Sequence[StatisticSpec],
        context: ContextSpecification,
    ) -> Dict[StatisticSpec, Optional[MaterializedView]]:
        """Per-spec smallest usable view, checking coverage once per view.

        Theorem 4.1's usability test factors into a per-query condition
        (``P ⊆ K``) and a per-spec condition (the parameter column
        exists).  A query resolves many specs against one context, so
        batching checks each view's coverage once instead of once per
        ``(view, spec)`` pair — this is the planner's and the resolver's
        shared matching step.
        """
        assigned: Dict[StatisticSpec, Optional[MaterializedView]] = {
            spec: None for spec in specs
        }
        pending = set(assigned)
        for view in self._covering_views(context):
            if not pending:
                break
            for spec in [s for s in pending if view.has_column_for(s)]:
                assigned[spec] = view
                pending.discard(spec)
        return assigned

    def find_covering(
        self, context: ContextSpecification
    ) -> Optional[MaterializedView]:
        """Smallest view with ``P ⊆ K`` regardless of columns."""
        best: Optional[MaterializedView] = None
        for view in self._views:
            if view.covers_context(context):
                if best is None or view.size < best.size:
                    best = view
        return best

    def resolve(
        self,
        specs: Sequence[StatisticSpec],
        context: ContextSpecification,
        counter: Optional[CostCounter] = None,
        usable: Optional[
            Dict[StatisticSpec, Optional[MaterializedView]]
        ] = None,
    ) -> Tuple[Dict[StatisticSpec, int], List[StatisticSpec], List[MaterializedView]]:
        """Answer as many of ``specs`` as possible from the catalog.

        Returns ``(values, unresolved, views_used)``.  Specs answerable by
        the same view are batched into one scan; distinct views each cost
        one scan (charged to ``counter``).  ``usable`` accepts a
        spec-to-view assignment already computed by
        :meth:`find_usable_many` (the optimizer's, typically) so matching
        is not repeated at execution time.
        """
        by_view: Dict[int, Tuple[MaterializedView, List[StatisticSpec]]] = {}
        unresolved: List[StatisticSpec] = []
        if usable is None:
            usable = self.find_usable_many(specs, context)
        for spec in specs:
            view = usable[spec]
            if view is None:
                unresolved.append(spec)
            else:
                entry = by_view.setdefault(id(view), (view, []))
                entry[1].append(spec)
        values: Dict[StatisticSpec, int] = {}
        views_used: List[MaterializedView] = []
        for view, view_specs in by_view.values():
            values.update(view.answer_many(view_specs, context, counter))
            views_used.append(view)
        return values, unresolved, views_used

    def stats(self) -> CatalogStats:
        """Storage accounting across the catalog."""
        if not self._views:
            return CatalogStats(0, 0, 0, 0.0, 0, 0.0)
        tuples = [v.size for v in self._views]
        storage = [v.storage_bytes() for v in self._views]
        return CatalogStats(
            num_views=len(self._views),
            total_tuples=sum(tuples),
            max_tuples=max(tuples),
            mean_tuples=sum(tuples) / len(tuples),
            total_storage_bytes=sum(storage),
            mean_storage_bytes=sum(storage) / len(storage),
        )
