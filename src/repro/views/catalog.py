"""The view catalog: matching queries to usable views (Sections 4.2, 6.3).

At query time each collection-specific statistic is matched against the
catalog first; when several views are usable, the smallest is picked
("the view with the minimal size is picked", Section 6.3).  Statistics no
view can answer are reported back so the engine can fall back to the
straightforward plan for just those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.query import ContextSpecification
from ..core.statistics import StatisticSpec
from ..index.postings import CostCounter
from .view import MaterializedView


@dataclass(frozen=True)
class CatalogStats:
    """Aggregate storage accounting for benches (Section 6.2's table)."""

    num_views: int
    total_tuples: int
    max_tuples: int
    mean_tuples: float
    total_storage_bytes: int
    mean_storage_bytes: float


class ViewCatalog:
    """An ordered collection of materialized views with usability search."""

    def __init__(self, views: Iterable[MaterializedView] = ()):
        self._views: List[MaterializedView] = list(views)

    def __len__(self) -> int:
        return len(self._views)

    def __iter__(self):
        return iter(self._views)

    def add(self, view: MaterializedView) -> None:
        self._views.append(view)

    def find_usable(
        self, spec: StatisticSpec, context: ContextSpecification
    ) -> Optional[MaterializedView]:
        """Smallest view usable for ``spec`` in ``context`` (Theorem 4.1)."""
        best: Optional[MaterializedView] = None
        for view in self._views:
            if view.is_usable_for(spec, context):
                if best is None or view.size < best.size:
                    best = view
        return best

    def find_covering(
        self, context: ContextSpecification
    ) -> Optional[MaterializedView]:
        """Smallest view with ``P ⊆ K`` regardless of columns."""
        best: Optional[MaterializedView] = None
        for view in self._views:
            if view.covers_context(context):
                if best is None or view.size < best.size:
                    best = view
        return best

    def resolve(
        self,
        specs: Sequence[StatisticSpec],
        context: ContextSpecification,
        counter: Optional[CostCounter] = None,
    ) -> Tuple[Dict[StatisticSpec, int], List[StatisticSpec], List[MaterializedView]]:
        """Answer as many of ``specs`` as possible from the catalog.

        Returns ``(values, unresolved, views_used)``.  Specs answerable by
        the same view are batched into one scan; distinct views each cost
        one scan (charged to ``counter``).
        """
        by_view: Dict[int, Tuple[MaterializedView, List[StatisticSpec]]] = {}
        unresolved: List[StatisticSpec] = []
        for spec in specs:
            view = self.find_usable(spec, context)
            if view is None:
                unresolved.append(spec)
            else:
                entry = by_view.setdefault(id(view), (view, []))
                entry[1].append(spec)
        values: Dict[StatisticSpec, int] = {}
        views_used: List[MaterializedView] = []
        for view, view_specs in by_view.values():
            values.update(view.answer_many(view_specs, context, counter))
            views_used.append(view)
        return values, unresolved, views_used

    def stats(self) -> CatalogStats:
        """Storage accounting across the catalog."""
        if not self._views:
            return CatalogStats(0, 0, 0, 0.0, 0, 0.0)
        tuples = [v.size for v in self._views]
        storage = [v.storage_bytes() for v in self._views]
        return CatalogStats(
            num_views=len(self._views),
            total_tuples=sum(tuples),
            max_tuples=max(tuples),
            mean_tuples=sum(tuples) / len(tuples),
            total_storage_bytes=sum(storage),
            mean_storage_bytes=sum(storage) / len(storage),
        )
