"""Materialized-view subsystem (Section 4).

Models the document collection as a wide sparse table, materialises
GROUP BY views over keyword subsets, checks usability (Theorem 4.1),
answers statistics by view scans (Theorem 4.2), estimates view sizes by
sampling, and matches queries to the smallest usable view.
"""

from .handle import CatalogHandle
from .wide_table import TableRow, WideSparseTable
from .view import GroupTuple, MaterializedView, materialize_view
from .estimator import DEFAULT_SAMPLE_SIZE, ViewSizeEstimator
from .catalog import CatalogStats, ViewCatalog
from .rewrite import ResolutionReport, compute_rare_term_statistics
from .sharding import (
    catalog_definitions,
    materialize_sharded_catalogs,
    replicate_catalog,
)
from .maintenance import (
    MaintenanceReport,
    apply_document,
    document_delta,
    maintain_catalog,
    maintain_views,
    needs_reselection,
)

__all__ = [
    "CatalogHandle",
    "MaintenanceReport",
    "apply_document",
    "document_delta",
    "maintain_catalog",
    "maintain_views",
    "needs_reselection",
    "TableRow",
    "WideSparseTable",
    "GroupTuple",
    "MaterializedView",
    "materialize_view",
    "ViewSizeEstimator",
    "DEFAULT_SAMPLE_SIZE",
    "CatalogStats",
    "ViewCatalog",
    "ResolutionReport",
    "compute_rare_term_statistics",
    "catalog_definitions",
    "materialize_sharded_catalogs",
    "replicate_catalog",
]
