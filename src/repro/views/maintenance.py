"""Incremental maintenance of materialized views under inserts and deletes.

The paper materialises views once over a static collection; a production
deployment must survive a growing *and shrinking* corpus.  Because every
view column is a *distributive* aggregate (COUNT, SUM), both directions
maintain views exactly with per-document deltas — no rescan of the
collection:

* the document's group key is its predicate set restricted to ``K``;
* COUNT(*) and SUM(len) update in O(1);
* each ``df``/``tc`` column updates from the document's term frequencies;
* deletion (:func:`retract_document`) applies the exact reverse delta,
  dropping a group tuple when its count reaches zero — so a view after
  any add/delete interleaving equals the view materialised from scratch
  over the surviving documents (the lifecycle tests assert this).

The segment lifecycle drives this module at segment granularity:
:func:`segment_delta` folds one sealed segment's live documents into a
catalog in a single pass (:func:`apply_segment_delta`), which is how a
lifecycle engine keeps its catalog exact across flushes without
re-materialising.

What incremental maintenance *cannot* preserve is the selection-time
guarantee: as the collection grows, context sizes drift across ``T_C``
and new group patterns can push a view past ``T_V``.
:class:`MaintenanceReport` surfaces both so operators know when to
re-run view selection, and :func:`needs_reselection` encodes the
re-selection policy.

Maintenance is also the invalidation point for query-time memoisation:
any :class:`~repro.core.stats_cache.StatisticsCache` (or wrapper with an
``invalidate()`` method) passed via ``caches=`` is dropped after the
views absorb a batch, so memoised per-context statistics can never
outlive the collection state they were computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

from ..index.documents import StoredDocument
from ..index.inverted_index import InvertedIndex
from .catalog import ViewCatalog
from .view import GroupTuple, MaterializedView


@dataclass
class MaintenanceReport:
    """What a maintenance pass did, and whether guarantees still hold."""

    documents_applied: int = 0
    views_updated: int = 0
    new_group_tuples: int = 0
    views_over_tv: List[FrozenSet[str]] = field(default_factory=list)
    growth_since_selection: float = 0.0
    caches_invalidated: int = 0

    def merge(self, other: "MaintenanceReport") -> None:
        self.documents_applied += other.documents_applied
        self.views_updated += other.views_updated
        self.new_group_tuples += other.new_group_tuples
        self.views_over_tv.extend(other.views_over_tv)


def document_delta(
    index: InvertedIndex, stored: StoredDocument
) -> tuple:
    """Extract the (predicates, length, term→tf) delta of one stored doc."""
    predicates = frozenset(
        stored.field_tokens.get(index.predicate_field, ())
    )
    tf_counts: Dict[str, int] = {}
    for name in index.searchable_fields:
        for token in stored.field_tokens.get(name, ()):
            tf_counts[token] = tf_counts.get(token, 0) + 1
    return predicates, stored.length, tf_counts


def apply_document(
    view: MaterializedView,
    predicates: FrozenSet[str],
    length: int,
    term_frequencies: Mapping[str, int],
) -> bool:
    """Fold one inserted document into ``view``.

    Returns ``True`` when the document created a brand-new group tuple
    (the event that can grow ``ViewSize`` past ``T_V``).
    """
    key = predicates & view.keyword_set
    group = view.groups.get(key)
    created = group is None
    if created:
        group = view.groups[key] = GroupTuple()
    group.count += 1
    group.sum_len += length
    for term, tf in term_frequencies.items():
        if term in view.df_terms:
            group.df[term] = group.df.get(term, 0) + 1
        if term in view.tc_terms:
            group.tc[term] = group.tc.get(term, 0) + tf
    # The columnar answer_many image is now stale; drop it so the next
    # batched answer rebuilds from the mutated groups.
    view.invalidate_columns()
    return created


def retract_document(
    view: MaterializedView,
    predicates: FrozenSet[str],
    length: int,
    term_frequencies: Mapping[str, int],
) -> bool:
    """Remove one document's contribution from ``view`` (exact reverse
    of :func:`apply_document`).

    Returns ``True`` when the document's group tuple emptied out and was
    dropped.  Retracting a document that was never applied corrupts the
    view silently where it can and raises where it cannot (count
    underflow) — callers own exactly-once delivery, same as application.
    """
    key = predicates & view.keyword_set
    group = view.groups.get(key)
    if group is None or group.count <= 0:
        raise ValueError(
            f"cannot retract from empty group {sorted(key)!r}: "
            "document was never applied to this view"
        )
    group.count -= 1
    group.sum_len -= length
    for term, tf in term_frequencies.items():
        if term in view.df_terms and term in group.df:
            remaining = group.df[term] - 1
            if remaining > 0:
                group.df[term] = remaining
            else:
                del group.df[term]
        if term in view.tc_terms and term in group.tc:
            remaining = group.tc[term] - tf
            if remaining > 0:
                group.tc[term] = remaining
            else:
                del group.tc[term]
    removed = group.count == 0
    if removed:
        del view.groups[key]
    view.invalidate_columns()
    return removed


def retract_views(
    views: Iterable[MaterializedView],
    index,
    removed_documents: Sequence[StoredDocument],
) -> MaintenanceReport:
    """Retract a batch of deleted documents from every view.

    ``removed_documents`` are the stored forms captured *before* the
    delete (the lifecycle engine looks them up from its snapshot first);
    ``index`` is anything exposing ``searchable_fields`` and
    ``predicate_field``.
    """
    views = list(views)
    report = MaintenanceReport(documents_applied=len(removed_documents))
    deltas = [document_delta(index, stored) for stored in removed_documents]
    for view in views:
        for predicates, length, tf_counts in deltas:
            retract_document(view, predicates, length, tf_counts)
        if deltas:
            report.views_updated += 1
    return report


def retract_catalog(
    catalog: ViewCatalog,
    index,
    removed_documents: Sequence[StoredDocument],
    caches: Iterable = (),
) -> MaintenanceReport:
    """Retract deleted documents from every catalog view, then drop caches."""
    report = retract_views(list(catalog), index, removed_documents)
    invalidated = 0
    for cache in caches:
        cache.invalidate()
        invalidated += 1
    report.caches_invalidated = invalidated
    return report


def segment_delta(index, segment, tombstones=frozenset()) -> list:
    """Per-document deltas of one sealed segment's live documents.

    ``segment`` is a :class:`~repro.lifecycle.segment.Segment`;
    ``tombstones`` filters documents deleted after sealing.  The result
    feeds :func:`apply_segment_delta` (or, reversed, retraction).
    """
    return [
        document_delta(index, stored)
        for stored in segment.live_documents(set(tombstones))
    ]


def apply_segment_delta(
    catalog: ViewCatalog,
    index,
    segment,
    tombstones=frozenset(),
    t_v: Optional[int] = None,
    caches: Iterable = (),
) -> MaintenanceReport:
    """Fold one segment's live documents into every catalog view.

    The lifecycle's per-segment maintenance unit: a catalog bootstrapped
    empty absorbs each sealed segment exactly once and stays equal to a
    from-scratch materialisation over the live collection.
    """
    deltas = segment_delta(index, segment, tombstones)
    report = MaintenanceReport(documents_applied=len(deltas))
    for view in catalog:
        for predicates, length, tf_counts in deltas:
            if apply_document(view, predicates, length, tf_counts):
                report.new_group_tuples += 1
        if deltas:
            report.views_updated += 1
        if t_v is not None and view.size > t_v:
            report.views_over_tv.append(view.keyword_set)
    invalidated = 0
    for cache in caches:
        cache.invalidate()
        invalidated += 1
    report.caches_invalidated = invalidated
    return report


def maintain_views(
    views: Iterable[MaterializedView],
    index: InvertedIndex,
    new_documents: Sequence[StoredDocument],
    t_v: Optional[int] = None,
) -> MaintenanceReport:
    """Apply a batch of inserted documents to every view.

    ``new_documents`` are the stored docs returned by
    :meth:`InvertedIndex.append_documents`; applying the same batch twice
    double-counts, so callers own exactly-once delivery.
    """
    views = list(views)
    report = MaintenanceReport(documents_applied=len(new_documents))
    deltas = [document_delta(index, stored) for stored in new_documents]
    for view in views:
        changed = False
        for predicates, length, tf_counts in deltas:
            if apply_document(view, predicates, length, tf_counts):
                report.new_group_tuples += 1
            changed = True
        if changed:
            report.views_updated += 1
        if t_v is not None and view.size > t_v:
            report.views_over_tv.append(view.keyword_set)
    return report


def maintain_catalog(
    catalog: ViewCatalog,
    index: InvertedIndex,
    new_documents: Sequence[StoredDocument],
    t_v: Optional[int] = None,
    baseline_num_docs: Optional[int] = None,
    caches: Iterable = (),
) -> MaintenanceReport:
    """Maintain every catalog view; compute collection growth if given a
    baseline (the document count at selection time).

    ``caches`` takes any objects with an ``invalidate()`` method —
    :class:`~repro.core.stats_cache.StatisticsCache`,
    :class:`~repro.core.stats_cache.CachingSearchEngine` — and drops them
    after the views absorb the batch, closing the stale-statistics window
    between index append and cache reset.  Invalidation runs even for an
    empty batch (callers may have appended via other paths).
    """
    report = maintain_views(list(catalog), index, new_documents, t_v=t_v)
    if baseline_num_docs:
        report.growth_since_selection = (
            index.num_docs - baseline_num_docs
        ) / baseline_num_docs
    invalidated = 0
    for cache in caches:
        cache.invalidate()
        invalidated += 1
    report.caches_invalidated = invalidated
    return report


def needs_reselection(
    report: MaintenanceReport, growth_threshold: float = 0.2
) -> bool:
    """Whether view selection should be re-run.

    Two triggers: any view exceeded ``T_V`` (the Theorem 4.2 cost bound
    no longer holds for it), or the collection has grown enough that
    ``T_C``-relative coverage is stale (contexts formerly below the
    threshold may now be above it with no covering view).
    """
    if report.views_over_tv:
        return True
    return report.growth_since_selection > growth_threshold
