"""Query-time statistic resolution helpers (Sections 4.1, 6.2).

The catalog handles the view-rewriting half (``P ⊆ K`` → scan ``V_K``).
This module implements the other half of Section 6.2's storage rule: a
view only stores ``df(w, ·)`` columns for keywords with ``|L_w| ≥ T_C``,
so statistics for *rare* keywords are computed at query time with a
selective-first intersection — cheap precisely because the keyword list
is short (``|L_w| < T_C`` bounds the work; skip pointers do the rest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.query import ContextQuery
from ..core.statistics import DOC_FREQUENCY, TERM_COUNT, StatisticSpec
from ..errors import QueryError
from ..index.inverted_index import InvertedIndex
from ..index.postings import CostCounter, PostingList


@dataclass
class ResolutionReport:
    """How one query's collection statistics were obtained.

    ``path`` is ``"views"`` (some view covered the context),
    ``"straightforward"`` (full Figure 3 plan), or ``"mixed"`` is never
    needed — rare-keyword fallbacks still count as the views path, which
    is exactly the configuration Figure 7 measures.
    """

    path: str = "straightforward"
    views_used: int = 0
    view_tuples_scanned: int = 0
    rare_term_fallbacks: int = 0
    specs_from_views: int = 0
    specs_from_fallback: int = 0


def compute_rare_term_statistics(
    index: InvertedIndex,
    query: ContextQuery,
    specs: Sequence[StatisticSpec],
    counter: Optional[CostCounter] = None,
) -> Dict[StatisticSpec, int]:
    """Compute ``df``/``tc`` specs by intersecting ``L_w`` with the context lists.

    Evaluates ``L_w ∩ L_m1 ∩ … ∩ L_mc`` starting from ``L_w`` (the most
    selective list by assumption) — the paper's example of why the
    ``L_m1 ∩ L_m2`` intersection need not be enforced in the plan when a
    view already supplies the context-level statistics.

    Only ``df``/``tc`` specs are accepted: other kinds have no
    selective-first shortcut and must go through views or the full plan.
    """
    values: Dict[StatisticSpec, int] = {}
    by_term: Dict[str, List[StatisticSpec]] = {}
    for spec in specs:
        if spec.kind not in (DOC_FREQUENCY, TERM_COUNT):
            raise QueryError(
                f"rare-term fallback cannot compute {spec.column_name()!r}"
            )
        by_term.setdefault(spec.term, []).append(spec)

    predicate_lists = [index.predicate_postings(m) for m in query.predicates]
    for term, term_specs in by_term.items():
        keyword_list = index.postings(term)
        matched = _selective_intersection(keyword_list, predicate_lists, counter)
        df = len(matched)
        tc = sum(tf for _, tf in matched)
        for spec in term_specs:
            values[spec] = df if spec.kind == DOC_FREQUENCY else tc
    return values


def _selective_intersection(
    keyword_list: PostingList,
    predicate_lists: Sequence[PostingList],
    counter: Optional[CostCounter],
) -> List[Tuple[int, int]]:
    """Walk the keyword list, skipping through each predicate list.

    Returns matched ``(docid, tf)`` pairs.  Work is bounded by
    ``|L_w| · (1 + #predicates)`` entry touches plus skipped segments —
    the ``|L_i| + |L_i| · M0`` regime of Section 3.2.2.
    """
    positions = [0] * len(predicate_lists)
    matched: List[Tuple[int, int]] = []
    for doc_id, tf in keyword_list:
        if counter is not None:
            counter.entries_scanned += 1
        in_all = True
        for idx, plist in enumerate(predicate_lists):
            positions[idx] = plist.skip_to(positions[idx], doc_id, counter)
            if (
                positions[idx] >= len(plist.doc_ids)
                or plist.doc_ids[positions[idx]] != doc_id
            ):
                in_all = False
                break
        if in_all:
            matched.append((doc_id, tf))
    if counter is not None:
        counter.model_cost += len(keyword_list) * (1 + len(predicate_lists))
    return matched
