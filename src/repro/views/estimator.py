"""``ViewSize`` computation — exact and sampled (Section 4.3).

``ViewSize(V_K)`` is the number of non-empty group tuples.  Computing it
exactly scans the whole collection; the paper's alternative is to sample
documents, map them to ``V_K``'s groups, and count the distinct non-empty
tuples hit.  View selection calls ``ViewSize`` constantly (every greedy
growth step re-checks the constraint), so the estimator caches results
per keyword set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable

from .._rng import SeedLike, make_rng
from .wide_table import WideSparseTable

DEFAULT_SAMPLE_SIZE = 2048


class ViewSizeEstimator:
    """Cached exact/sampled view-size oracle over one wide table.

    Parameters
    ----------
    table:
        The wide sparse table whose rows define the groups.
    sample_size:
        Documents drawn per sampled estimate; estimates are monotone
        under-counts of the exact size (a sample can only hit a subset of
        the non-empty tuples), which keeps the selection constraint
        conservative in the safe direction only if callers leave slack —
        selection tests therefore verify with :meth:`exact`.
    seed:
        RNG seed for sampling determinism.
    """

    def __init__(
        self,
        table: WideSparseTable,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        seed: SeedLike = None,
    ):
        self.table = table
        self.sample_size = sample_size
        self._rng = make_rng(seed)
        self._predicate_sets = table.predicate_sets()
        if sample_size >= len(self._predicate_sets):
            self._sample = list(range(len(self._predicate_sets)))
        else:
            self._sample = sorted(
                self._rng.sample(range(len(self._predicate_sets)), sample_size)
            )
        self._exact_cache: Dict[FrozenSet[str], int] = {}
        self._sampled_cache: Dict[FrozenSet[str], int] = {}

    def exact(self, keyword_set: Iterable[str]) -> int:
        """Exact ``ViewSize``: distinct group keys over all rows."""
        key = frozenset(keyword_set)
        cached = self._exact_cache.get(key)
        if cached is None:
            cached = len({preds & key for preds in self._predicate_sets})
            self._exact_cache[key] = cached
        return cached

    def sampled(self, keyword_set: Iterable[str]) -> int:
        """Sampled ``ViewSize``: distinct group keys over the fixed sample.

        Uses one fixed sample for all keyword sets so that estimates are
        comparable across candidate views during selection.
        """
        key = frozenset(keyword_set)
        cached = self._sampled_cache.get(key)
        if cached is None:
            sets = self._predicate_sets
            cached = len({sets[i] & key for i in self._sample})
            self._sampled_cache[key] = cached
        return cached

    def __call__(self, keyword_set: Iterable[str]) -> int:
        """Default oracle used by selection: the exact size.

        Selection correctness (Problem 5.1's ``ViewSize ≤ T_V``) is stated
        against true sizes; the sampled mode exists for scale experiments
        and is opted into explicitly.
        """
        return self.exact(keyword_set)


def sampled_view_cost_oracle(estimator: "ViewSizeEstimator"):
    """A drop-in ``view_cost`` for :class:`repro.core.optimizer.Optimizer`
    that prices view scans from *sampled* sizes instead of the exact
    ``view.size`` the default uses.

    Sampled sizes under-count, so an optimizer using this oracle is
    biased toward the views path — acceptable for scale experiments where
    exact sizes are too expensive to maintain, and safe because path
    choice never changes answers, only cost.
    """
    from ..core.cost import estimate_view_cost

    def view_cost(view, num_specs: int) -> int:
        return estimate_view_cost(
            estimator.sampled(view.keyword_set), num_specs
        )

    return view_cost
