"""Materialized views ``V_K`` (Section 4.1–4.3).

A view groups the wide sparse table by a keyword subset ``K`` and stores,
per non-empty group, the aggregated parameter columns:

* ``count``   — COUNT(*)            (answers ``|D_P|``)
* ``sum_len`` — SUM(len(d))         (answers ``len(D_P)``)
* ``df[w]``   — COUNT(docs with w)  (answers ``df(w, D_P)``)
* ``tc[w]``   — SUM(tf(w, d))       (answers ``tc(w, D_P)``)

``df``/``tc`` columns exist only for the *frequent* content keywords the
builder was given (Section 6.2's storage rule: only ``|L_w| ≥ T_C``).
Groups are keyed by the subset of ``K`` present in the group's documents —
the sparse encoding of the 0/1 tuple — so ``ViewSize`` (the number of
non-empty tuples) is simply the number of stored groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

try:  # numpy is optional: answer_many falls back to a python column scan
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatched tests
    _np = None

from ..errors import ViewError, ViewNotUsableError
from ..index.inverted_index import InvertedIndex
from ..index.postings import CostCounter
from ..core.query import ContextSpecification
from ..core.statistics import (
    CARDINALITY,
    DOC_FREQUENCY,
    TERM_COUNT,
    TOTAL_LENGTH,
    StatisticSpec,
)
from .wide_table import WideSparseTable


@dataclass
class GroupTuple:
    """One non-empty tuple of ``V_K``: the aggregates of one partition."""

    count: int = 0
    sum_len: int = 0
    df: Dict[str, int] = field(default_factory=dict)
    tc: Dict[str, int] = field(default_factory=dict)


# numpy's int64 bitmask path only holds this many keyword bits; wider
# views (or a numpy-less interpreter) use the python-int column scan.
_NUMPY_MASK_BITS = 63


class _ViewColumns:
    """Column-major image of a view's groups for batched answering.

    One parallel row per group: an integer bitmask of the group's keyword
    pattern plus the count/sum_len/df/tc parameter columns.  A context
    ``P ⊆ K`` becomes a mask, and the groups containing ``P`` are exactly
    those with ``pattern & wanted == wanted`` — a single vectorised
    compare + masked column sum on the numpy path, or one python loop per
    batch (instead of one per spec) on the fallback path.
    """

    def __init__(self, view: "MaterializedView"):
        terms = sorted(view.keyword_set)
        self.bit_for: Dict[str, int] = {t: 1 << i for i, t in enumerate(terms)}
        patterns: List[int] = []
        counts: List[int] = []
        sum_lens: List[int] = []
        df_cols: Dict[str, List[int]] = {t: [] for t in view.df_terms}
        tc_cols: Dict[str, List[int]] = {t: [] for t in view.tc_terms}
        for pattern, group in view.groups.items():
            mask = 0
            for t in pattern:
                mask |= self.bit_for[t]
            patterns.append(mask)
            counts.append(group.count)
            sum_lens.append(group.sum_len)
            for t, col in df_cols.items():
                col.append(group.df.get(t, 0))
            for t, col in tc_cols.items():
                col.append(group.tc.get(t, 0))
        self.use_numpy = _np is not None and len(terms) <= _NUMPY_MASK_BITS
        if self.use_numpy:
            self.patterns = _np.asarray(patterns, dtype=_np.int64)
            self.counts = _np.asarray(counts, dtype=_np.int64)
            self.sum_lens = _np.asarray(sum_lens, dtype=_np.int64)
            self.df_cols = {
                t: _np.asarray(col, dtype=_np.int64) for t, col in df_cols.items()
            }
            self.tc_cols = {
                t: _np.asarray(col, dtype=_np.int64) for t, col in tc_cols.items()
            }
        else:
            self.patterns = patterns
            self.counts = counts
            self.sum_lens = sum_lens
            self.df_cols = df_cols
            self.tc_cols = tc_cols

    def _column(self, spec: StatisticSpec):
        if spec.kind == CARDINALITY:
            return self.counts
        if spec.kind == TOTAL_LENGTH:
            return self.sum_lens
        if spec.kind == DOC_FREQUENCY:
            return self.df_cols[spec.term]
        return self.tc_cols[spec.term]

    def answer_many(
        self, specs: Sequence[StatisticSpec], wanted: FrozenSet[str]
    ) -> Dict[StatisticSpec, int]:
        wanted_mask = 0
        for t in wanted:
            wanted_mask |= self.bit_for[t]
        if self.use_numpy:
            mask = (self.patterns & wanted_mask) == wanted_mask
            return {
                spec: int(self._column(spec)[mask].sum()) for spec in specs
            }
        totals = {spec: 0 for spec in specs}
        columns = [(spec, self._column(spec)) for spec in specs]
        for row, pattern in enumerate(self.patterns):
            if pattern & wanted_mask == wanted_mask:
                for spec, col in columns:
                    totals[spec] += col[row]
        return totals


class MaterializedView:
    """An immutable view ``V_K`` answering statistics for any ``P ⊆ K``."""

    def __init__(
        self,
        keyword_set: Iterable[str],
        groups: Mapping[FrozenSet[str], GroupTuple],
        df_terms: Iterable[str] = (),
        tc_terms: Iterable[str] = (),
    ):
        self.keyword_set: FrozenSet[str] = frozenset(keyword_set)
        if not self.keyword_set:
            raise ViewError("a view must group by at least one keyword")
        self.groups: Dict[FrozenSet[str], GroupTuple] = dict(groups)
        self.df_terms: FrozenSet[str] = frozenset(df_terms)
        self.tc_terms: FrozenSet[str] = frozenset(tc_terms)
        # Lazily-built column-major image used by answer_many; must be
        # dropped (invalidate_columns) whenever self.groups mutates.
        self._columns: Optional[_ViewColumns] = None

    def invalidate_columns(self) -> None:
        """Drop the columnar cache after a mutation of ``groups``.

        Incremental maintenance (:func:`repro.views.maintenance.apply_document`)
        edits group tuples in place; the next ``answer_many`` rebuilds the
        columns from the mutated groups.
        """
        self._columns = None

    # -- size & storage ---------------------------------------------------

    @property
    def size(self) -> int:
        """``ViewSize(V_K)``: the number of non-empty tuples."""
        return len(self.groups)

    @property
    def num_parameter_columns(self) -> int:
        """count + sum_len + one df column per frequent term + tc columns."""
        return 2 + len(self.df_terms) + len(self.tc_terms)

    def storage_bytes(self, bytes_per_cell: int = 8) -> int:
        """Estimated storage: tuples × (keyword bitmap + parameter cells).

        Keyword columns are charged one bit each (rounded up to bytes);
        parameter cells ``bytes_per_cell`` each, matching the paper's
        back-of-envelope 14.3 MB-per-view style of accounting.
        """
        bitmap_bytes = (len(self.keyword_set) + 7) // 8
        row_bytes = bitmap_bytes + self.num_parameter_columns * bytes_per_cell
        return self.size * row_bytes

    # -- usability (Theorem 4.1) -------------------------------------------

    def covers_context(self, context: ContextSpecification) -> bool:
        """Condition 2 of Theorem 4.1: ``P ⊆ K``."""
        return context.is_covered_by(self.keyword_set)

    def has_column_for(self, spec: StatisticSpec) -> bool:
        """Condition 1 of Theorem 4.1: the parameter column exists."""
        if spec.kind in (CARDINALITY, TOTAL_LENGTH):
            return True
        if spec.kind == DOC_FREQUENCY:
            return spec.term in self.df_terms
        if spec.kind == TERM_COUNT:
            return spec.term in self.tc_terms
        return False

    def is_usable_for(
        self, spec: StatisticSpec, context: ContextSpecification
    ) -> bool:
        """Full usability test of Theorem 4.1."""
        return self.has_column_for(spec) and self.covers_context(context)

    # -- answering (the rewritten aggregation of Section 4.1) ---------------

    def answer(
        self,
        spec: StatisticSpec,
        context: ContextSpecification,
        counter: Optional[CostCounter] = None,
    ) -> int:
        """Answer one statistic by scanning the view's tuples.

        Sums the spec's parameter column over every group whose keyword
        pattern has all of ``P`` set — the rewritten query
        ``SELECT Agg(ContxPara) FROM V_K WHERE m_j1 = 1 AND …``.
        """
        return self.answer_many([spec], context, counter)[spec]

    def answer_many(
        self,
        specs: Sequence[StatisticSpec],
        context: ContextSpecification,
        counter: Optional[CostCounter] = None,
    ) -> Dict[StatisticSpec, int]:
        """Answer a batch of statistics in a single scan of the view.

        Complexity is ``O(ViewSize)`` regardless of the context size —
        Theorem 4.2's guarantee, and the reason large contexts are cheap
        once covered.  The scan runs over a lazily-built column-major
        image of the groups: a vectorised bitmask compare + masked column
        sums when numpy is available (and ``|K|`` fits an int64 mask), a
        python column loop otherwise.  Both paths return exactly what the
        tuple-scan reference (:meth:`_answer_many_reference`) returns, and
        the :class:`CostCounter` charge is the reference's — one scanned
        entry and one unit of model cost per view tuple — regardless of
        which path ran.
        """
        for spec in specs:
            if not self.is_usable_for(spec, context):
                raise ViewNotUsableError(
                    f"view over {sorted(self.keyword_set)} cannot answer "
                    f"{spec.column_name()} for context {context}"
                )
        if self._columns is None:
            self._columns = _ViewColumns(self)
        totals = self._columns.answer_many(specs, context.as_set())
        if counter is not None:
            counter.entries_scanned += self.size
            counter.model_cost += self.size
        return totals

    def _answer_many_reference(
        self,
        specs: Sequence[StatisticSpec],
        context: ContextSpecification,
        counter: Optional[CostCounter] = None,
    ) -> Dict[StatisticSpec, int]:
        """Tuple-scan reference implementation (ground truth for tests)."""
        for spec in specs:
            if not self.is_usable_for(spec, context):
                raise ViewNotUsableError(
                    f"view over {sorted(self.keyword_set)} cannot answer "
                    f"{spec.column_name()} for context {context}"
                )
        wanted = context.as_set()
        totals: Dict[StatisticSpec, int] = {spec: 0 for spec in specs}
        for pattern, group in self.groups.items():
            if not wanted <= pattern:
                continue
            for spec in specs:
                if spec.kind == CARDINALITY:
                    totals[spec] += group.count
                elif spec.kind == TOTAL_LENGTH:
                    totals[spec] += group.sum_len
                elif spec.kind == DOC_FREQUENCY:
                    totals[spec] += group.df.get(spec.term, 0)
                elif spec.kind == TERM_COUNT:
                    totals[spec] += group.tc.get(spec.term, 0)
        if counter is not None:
            counter.entries_scanned += self.size
            counter.model_cost += self.size
        return totals

    def __repr__(self) -> str:
        return (
            f"MaterializedView(|K|={len(self.keyword_set)}, size={self.size}, "
            f"df_cols={len(self.df_terms)})"
        )


def materialize_view(
    table: WideSparseTable,
    keyword_set: Iterable[str],
    df_terms: Iterable[str] = (),
    tc_terms: Iterable[str] = (),
) -> MaterializedView:
    """Build ``V_K`` from the wide sparse table.

    One table scan assigns every document to its group and accumulates
    COUNT/SUM(len); then one posting-list scan per ``df``/``tc`` term
    fills the term parameter columns (the posting list *is* the sparse
    ``tf(d, w)`` column of ``T``).
    """
    keyword_set = frozenset(keyword_set)
    df_terms = frozenset(df_terms)
    tc_terms = frozenset(tc_terms)
    groups: Dict[FrozenSet[str], GroupTuple] = {}

    keys = table.group_keys(keyword_set)
    for row, key in zip(table, keys):
        group = groups.get(key)
        if group is None:
            group = groups[key] = GroupTuple()
        group.count += 1
        group.sum_len += row.length

    index: InvertedIndex = table.index
    for term in df_terms | tc_terms:
        plist = index.postings(term)
        for doc_id, tf in plist:
            group = groups[keys[doc_id]]
            if term in df_terms:
                group.df[term] = group.df.get(term, 0) + 1
            if term in tc_terms:
                group.tc[term] = group.tc.get(term, 0) + tf

    return MaterializedView(keyword_set, groups, df_terms, tc_terms)
