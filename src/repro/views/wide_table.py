"""The wide sparse table ``T`` of Section 4.1.

The document collection is modelled as a table with one row per document,
a 0/1 *keyword column* per context predicate, and *parameter columns*
(``len(d)``, ``tf(d, w)``) that collection-specific statistics aggregate.
The table is never stored densely — rows keep only their set of present
predicates — but the relational semantics (GROUP BY a keyword subset,
aggregate parameters per group) is exactly the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List

from ..index.inverted_index import InvertedIndex


@dataclass(frozen=True)
class TableRow:
    """One row of ``T``: a document's predicates and scalar parameters."""

    doc_id: int
    predicates: FrozenSet[str]
    length: int


class WideSparseTable:
    """Sparse row store over an :class:`InvertedIndex`.

    Rows are derived once from the index's predicate field and document
    lengths; term-frequency parameter columns are *not* copied — they are
    read straight from the index's posting lists at materialisation time,
    which is both faster and closer to how a real system would build a
    view (a scan of ``L_w`` is the column ``tf(d, w)``).
    """

    def __init__(self, rows: List[TableRow], index: InvertedIndex):
        self._rows = rows
        self._index = index

    @classmethod
    def from_index(cls, index: InvertedIndex) -> "WideSparseTable":
        rows = []
        predicate_field = index.predicate_field
        for doc in index.store:
            rows.append(
                TableRow(
                    doc_id=doc.internal_id,
                    predicates=frozenset(doc.field_tokens.get(predicate_field, ())),
                    length=doc.length,
                )
            )
        return cls(rows, index)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[TableRow]:
        return iter(self._rows)

    @property
    def index(self) -> InvertedIndex:
        return self._index

    def row(self, doc_id: int) -> TableRow:
        return self._rows[doc_id]

    def group_key(self, doc_id: int, keyword_set: FrozenSet[str]) -> FrozenSet[str]:
        """The GROUP BY key of a row under view keywords ``K``.

        Restricting the row's predicate set to ``K`` is equivalent to
        reading its 0/1 pattern over the keyword columns of ``V_K``.
        """
        return self._rows[doc_id].predicates & keyword_set

    def group_keys(
        self, keyword_set: FrozenSet[str]
    ) -> List[FrozenSet[str]]:
        """Group key per row, indexed by docid (one table scan)."""
        return [row.predicates & keyword_set for row in self._rows]

    def predicate_sets(self) -> List[FrozenSet[str]]:
        """Every row's predicate set (the transaction DB for mining)."""
        return [row.predicates for row in self._rows]
