"""Binary block storage (format v4): mmap-backed, lazily decoded.

Layout of a ``.v4`` artefact (all integers little-endian)::

    +-----------------------------------------------------------------+
    | magic "CSRX4\\r\\n\\0" (8B) | header_len u32 | header JSON       |
    +-----------------------------------------------------------------+
    | sections, at offsets recorded in header["sections"] relative    |
    | to the end of the header:                                       |
    |   doc_meta       3 x num_docs i64 (internal ids, lengths,       |
    |                  unique-term counts)                            |
    |   ext_ids        zlib, newline-joined external ids              |
    |   token_dict     zlib, newline-joined distinct tokens/fields    |
    |   token_stream   zlib varint stream of per-doc token ids        |
    |   token_offsets  num_docs i64 end offsets into the decompressed |
    |                  token stream                                   |
    |   terms_text     concatenated UTF-8 term strings                |
    |   content_index  fixed 48-byte records, one per content term    |
    |   predicate_index  same, one per predicate term                 |
    |   block_meta     per list: seg_mins, seg_maxes, seg_max_tfs,    |
    |                  block end offsets (4 x n_blocks i64)           |
    |   blocks         concatenated block frames                      |
    |                  (:func:`repro.index.compression.encode_block`) |
    |   global_ids     num_docs i64 (sharded shard files only)        |
    +-----------------------------------------------------------------+

Term record (48 bytes, ``<QIIQQQQ`` minus the reserved pad)::

    term_off u64 | term_len u32 | reserved u32 | count u64 |
    max_tf u64   | meta_off u64 | data_off u64

``term_off`` indexes ``terms_text``; ``meta_off``/``data_off`` index
``block_meta``/``blocks``.  The records are fixed width and sorted by
term, so any list — or any single block of it, via the per-block end
offsets — can be located with arithmetic, never by parsing the file.

A cold :class:`BlockFile` open reads the header, dictionaries, and
skip metadata (a few hundred KB); posting payloads stay on disk until a
query touches a block, at which point it is decoded through a small
per-file LRU.  The mmap is the only OS resource: the file descriptor
is closed immediately after mapping, so an unclosed reader can never
raise ``ResourceWarning``; ``close()`` releases the mapping
deterministically.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
import zlib
from array import array
from collections import OrderedDict
from collections.abc import MutableMapping
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import IndexError_, StorageError
from .compression import decode_block, encode_block, encode_varint, decode_varint
from .documents import DocumentStore, StoredDocument
from .postings import LazyPostingList, PostingList

MAGIC = b"CSRX4\r\n\x00"
BLOCK_FORMAT_VERSION = 4
_HEADER_LEN_STRUCT = struct.Struct("<I")
_TERM_RECORD = struct.Struct("<QIIQQQQ")
_DEFAULT_CACHE_BLOCKS = 512

_BIG_ENDIAN = sys.byteorder == "big"


def _column_bytes(values: Iterable[int]) -> bytes:
    col = values if isinstance(values, array) and values.typecode == "q" else array("q", values)
    if _BIG_ENDIAN:
        col = array("q", col)
        col.byteswap()
    return col.tobytes()


def _adopt_column(buf: bytes) -> array:
    col = array("q")
    col.frombytes(buf)
    if _BIG_ENDIAN:
        col.byteswap()
    return col


def _corrupt(path, offset: int, detail: str) -> StorageError:
    return StorageError(f"corrupt artefact {path} at byte {offset}: {detail}")


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------


def _encode_list(plist: PostingList, segment_size: int):
    """Encode one posting list into (meta bytes, frame bytes)."""
    if plist.segment_size != segment_size:
        raise StorageError(
            f"posting list {plist.term!r} has segment size "
            f"{plist.segment_size}, file uses {segment_size}"
        )
    ids = plist.doc_ids
    tfs = plist.tfs
    n = len(plist)
    frames = bytearray()
    ends = array("q")
    prev = -1
    for start in range(0, n, segment_size):
        count = min(segment_size, n - start)
        frames += encode_block(ids, tfs, start, count, prev)
        ends.append(len(frames))
        prev = ids[start + count - 1]
    meta = (
        _column_bytes(plist._seg_mins)
        + _column_bytes(plist._seg_maxes)
        + _column_bytes(plist._seg_max_tfs)
        + _column_bytes(ends)
    )
    return meta, bytes(frames)


def _encode_token_sections(documents: List[StoredDocument]):
    """Token-id varint stream + dictionary, or a JSON fallback.

    Returns ``(codec, token_dict, token_stream, token_offsets)`` where
    the dict/offsets entries are ``b""`` under the JSON fallback (used
    when some token embeds the dictionary's newline separator).
    """
    distinct = set()
    plain = True
    for doc in documents:
        for name, tokens in doc.field_tokens.items():
            if "\n" in name:
                plain = False
                break
            distinct.add(name)
            for token in tokens:
                if "\n" in token:
                    plain = False
                    break
                distinct.add(token)
            if not plain:
                break
        if not plain:
            break
    if not plain:
        payload = json.dumps(
            [
                {name: list(tokens) for name, tokens in doc.field_tokens.items()}
                for doc in documents
            ],
            ensure_ascii=False,
        ).encode("utf-8")
        return "json", b"", zlib.compress(payload, 6), b""
    vocab = sorted(distinct)
    token_id = {token: i for i, token in enumerate(vocab)}
    stream = bytearray()
    offsets = array("q")
    for doc in documents:
        fields = doc.field_tokens
        stream += encode_varint(len(fields))
        for name, tokens in fields.items():
            stream += encode_varint(token_id[name])
            stream += encode_varint(len(tokens))
            for token in tokens:
                stream += encode_varint(token_id[token])
        offsets.append(len(stream))
    return (
        "ids",
        zlib.compress("\n".join(vocab).encode("utf-8"), 6),
        zlib.compress(bytes(stream), 6),
        _column_bytes(offsets),
    )


def write_block_file(
    path,
    *,
    kind: str,
    config: Dict,
    segment_size: int,
    documents: Iterable[StoredDocument],
    content: Dict[str, PostingList],
    predicates: Dict[str, PostingList],
    global_ids: Optional[Iterable[int]] = None,
    header_extra: Optional[Dict] = None,
    atomic: bool = False,
) -> int:
    """Serialise one index/segment into a v4 block file; returns bytes written."""
    documents = list(documents)
    ext_ids = [doc.external_id for doc in documents]
    if any("\n" in ext for ext in ext_ids):
        ext_codec = "json"
        ext_payload = zlib.compress(
            json.dumps(ext_ids, ensure_ascii=False).encode("utf-8"), 6
        )
    else:
        ext_codec = "lines"
        ext_payload = zlib.compress("\n".join(ext_ids).encode("utf-8"), 6)

    doc_meta = (
        _column_bytes(doc.internal_id for doc in documents)
        + _column_bytes(doc.length for doc in documents)
        + _column_bytes(doc.unique_terms for doc in documents)
    )

    tokens_codec, token_dict, token_stream, token_offsets = _encode_token_sections(
        documents
    )

    terms_text = bytearray()
    block_meta = bytearray()
    blocks = bytearray()

    def encode_space(posting_map: Dict[str, PostingList]) -> bytes:
        records = bytearray()
        for term in sorted(posting_map):
            plist = posting_map[term]
            if len(plist) == 0:
                continue
            term_bytes = term.encode("utf-8")
            term_off = len(terms_text)
            terms_text.extend(term_bytes)
            meta_off = len(block_meta)
            data_off = len(blocks)
            meta, frames = _encode_list(plist, segment_size)
            block_meta.extend(meta)
            blocks.extend(frames)
            records += _TERM_RECORD.pack(
                term_off,
                len(term_bytes),
                0,
                len(plist),
                plist.max_tf,
                meta_off,
                data_off,
            )
        return bytes(records)

    content_index = encode_space(content)
    predicate_index = encode_space(predicates)

    sections: List[Tuple[str, bytes]] = [
        ("doc_meta", doc_meta),
        ("ext_ids", ext_payload),
        ("token_dict", token_dict),
        ("token_stream", token_stream),
        ("token_offsets", token_offsets),
        ("terms_text", bytes(terms_text)),
        ("content_index", content_index),
        ("predicate_index", predicate_index),
        ("block_meta", bytes(block_meta)),
        ("blocks", bytes(blocks)),
    ]
    if global_ids is not None:
        sections.append(("global_ids", _column_bytes(global_ids)))

    offsets: Dict[str, List[int]] = {}
    cursor = 0
    for name, payload in sections:
        offsets[name] = [cursor, len(payload)]
        cursor += len(payload)

    header = {
        "kind": kind,
        "version": BLOCK_FORMAT_VERSION,
        "config": dict(config),
        "num_docs": len(documents),
        "segment_size": segment_size,
        "tokens_codec": tokens_codec,
        "ext_codec": ext_codec,
        "sections": offsets,
    }
    if header_extra:
        header.update(header_extra)
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")

    blob = bytearray()
    blob += MAGIC
    blob += _HEADER_LEN_STRUCT.pack(len(header_bytes))
    blob += header_bytes
    for _, payload in sections:
        blob += payload

    if atomic:
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    else:
        with open(path, "wb") as handle:
            handle.write(blob)
    return len(blob)


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------


def is_block_file(path) -> bool:
    """Sniff the v4 magic without raising on short or missing files."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


class _BlockCache:
    """Tiny LRU of decoded blocks, keyed by (list data offset, block no)."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: "OrderedDict" = OrderedDict()

    def get(self, key):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()


class _LazyFieldTokens(dict):
    """Per-document ``field_tokens`` mapping decoded on first access."""

    __slots__ = ("_source", "_doc_index")

    def __init__(self, source: "BlockFile", doc_index: int):
        super().__init__()
        self._source = source
        self._doc_index = doc_index

    def _load(self) -> None:
        if self._source is not None:
            dict.update(self, self._source._doc_tokens(self._doc_index))
            self._source = None

    def __getitem__(self, key):
        self._load()
        return dict.__getitem__(self, key)

    def get(self, key, default=None):
        self._load()
        return dict.get(self, key, default)

    def __contains__(self, key):
        self._load()
        return dict.__contains__(self, key)

    def __iter__(self):
        self._load()
        return dict.__iter__(self)

    def __len__(self):
        self._load()
        return dict.__len__(self)

    def keys(self):
        self._load()
        return dict.keys(self)

    def values(self):
        self._load()
        return dict.values(self)

    def items(self):
        self._load()
        return dict.items(self)

    def copy(self):
        self._load()
        return dict(dict.items(self))

    def __eq__(self, other):
        self._load()
        if isinstance(other, _LazyFieldTokens):
            other._load()
        return dict.__eq__(self, other)

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None

    def __repr__(self):
        self._load()
        return dict.__repr__(self)

    def __reduce__(self):
        # Pickle (fork/spawn executors) as a plain, fully-decoded dict.
        return (dict, (self.copy(),))


class _LazyDocumentStore(DocumentStore):
    """A :class:`DocumentStore` over a block file; shells build on demand.

    Cold open does no per-document work at all.  Queries touch the
    store three ways, each served without hydrating the collection:

    * ``lengths()`` — bulk-decoded from the fixed-width metadata column;
    * ``get(doc_id)`` — one shell per docid, memoised;
    * ``by_external_id`` — an id map built from the external-id section.

    Anything that needs every document — iteration (save, shard
    splits, compaction) or mutation (``add``/``add_restored``) —
    hydrates the full shell list first and then behaves exactly like
    the in-memory store it subclasses.
    """

    def __init__(self, source: "BlockFile"):
        super().__init__()
        self._source = source
        self._hydrated = False
        self._memo: Dict[int, StoredDocument] = {}
        self._ext_map: Optional[Dict[str, int]] = None

    def _hydrate(self) -> None:
        if not self._hydrated:
            self._docs = list(self._source.documents())
            self._by_external = {
                doc.external_id: doc.internal_id for doc in self._docs
            }
            self._memo.clear()
            self._ext_map = None
            self._lengths_cache = None
            self._hydrated = True

    def __len__(self) -> int:
        return len(self._docs) if self._hydrated else self._source.num_docs

    def __iter__(self):
        self._hydrate()
        return iter(self._docs)

    def add(self, document, field_tokens, searchable_fields):
        self._hydrate()
        return super().add(document, field_tokens, searchable_fields)

    def add_restored(self, stored: StoredDocument) -> StoredDocument:
        self._hydrate()
        return super().add_restored(stored)

    def get(self, internal_id: int) -> StoredDocument:
        if self._hydrated:
            return super().get(internal_id)
        if not 0 <= internal_id < self._source.num_docs:
            raise IndexError_(f"unknown internal docid: {internal_id}")
        doc = self._memo.get(internal_id)
        if doc is None:
            doc = self._source.document(internal_id)
            self._memo[internal_id] = doc
        return doc

    def by_external_id(self, external_id: str) -> Optional[StoredDocument]:
        if self._hydrated:
            return super().by_external_id(external_id)
        if self._ext_map is None:
            self._ext_map = {
                ext: i for i, ext in enumerate(self._source.external_ids())
            }
        internal = self._ext_map.get(external_id)
        return None if internal is None else self.get(internal)

    def lengths(self) -> List[int]:
        if self._hydrated:
            return super().lengths()
        if self._lengths_cache is None:
            self._lengths_cache = list(self._source._doc_meta_columns()[1])
        return self._lengths_cache


class _LazyPostingMap(MutableMapping):
    """Term → posting-list mapping that builds each list on first read.

    Entries start as the raw term-dictionary records; any value access
    swaps in the real :class:`LazyPostingList`.  Key-only operations —
    membership, iteration, ``len`` — never build anything, which keeps
    a cold open free of per-term object construction.  Deliberately
    *not* a ``dict`` subclass: ``dict(mapping)`` copies a dict
    subclass's raw table without calling ``__getitem__``, which would
    leak placeholder records; via ``MutableMapping`` such a copy
    materialises every list instead.
    """

    __slots__ = ("_source", "_entries")

    def __init__(self, source: "BlockFile", records: Dict[str, tuple]):
        self._source = source
        self._entries = records

    def __getitem__(self, term: str) -> LazyPostingList:
        value = self._entries[term]
        if type(value) is tuple:
            value = self._source._build_posting_list(term, value)
            self._entries[term] = value
        return value

    def get(self, term: str, default=None):
        if term not in self._entries:
            return default
        return self[term]

    def __contains__(self, term) -> bool:
        return term in self._entries

    def __setitem__(self, term: str, value) -> None:
        self._entries[term] = value

    def __delitem__(self, term: str) -> None:
        del self._entries[term]

    def __iter__(self):
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __reduce__(self):
        # Pickle (fork/spawn executors) as a plain, fully-built dict.
        return (dict, (dict(self.items()),))


class BlockFile:
    """An open, mmap-backed v4 artefact.

    The file descriptor is closed as soon as the mapping exists — the
    mapping keeps the pages alive — so the only resource to release is
    the mmap itself, which :meth:`close` does idempotently.  All reads
    slice the mapping into fresh ``bytes`` (never exporting buffers),
    so ``close()`` can never fail with dangling-view errors and decoded
    blocks outlive the file they came from.
    """

    def __init__(self, path, cache_blocks: int = _DEFAULT_CACHE_BLOCKS):
        self.path = path
        self._mmap: Optional[mmap.mmap] = None
        with open(path, "rb") as handle:
            head = handle.read(len(MAGIC))
            if head != MAGIC:
                raise _corrupt(path, 0, f"bad magic {head!r}")
            try:
                self._mmap = mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                )
            except (ValueError, OSError) as exc:
                raise _corrupt(path, 0, f"cannot mmap: {exc}") from None
        mm = self._mmap
        if len(mm) < len(MAGIC) + _HEADER_LEN_STRUCT.size:
            raise _corrupt(
                path, len(mm), "file truncated inside the fixed header"
            )
        (header_len,) = _HEADER_LEN_STRUCT.unpack_from(mm, len(MAGIC))
        header_start = len(MAGIC) + _HEADER_LEN_STRUCT.size
        self._base = header_start + header_len
        if self._base > len(mm):
            raise _corrupt(
                path,
                header_start,
                f"header claims {header_len} bytes but only "
                f"{len(mm) - header_start} remain",
            )
        try:
            self.header = json.loads(mm[header_start : self._base].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _corrupt(path, header_start, f"unreadable header: {exc}")
        if self.header.get("version") != BLOCK_FORMAT_VERSION:
            raise StorageError(
                f"artefact {path} has block-format version "
                f"{self.header.get('version')!r}; this build supports "
                f"{BLOCK_FORMAT_VERSION}"
            )
        self.kind = self.header.get("kind", "index")
        self.config = self.header.get("config", {})
        self.num_docs = int(self.header.get("num_docs", 0))
        self.segment_size = int(self.header.get("segment_size", 0))
        if self.segment_size < 2:
            raise _corrupt(
                path, header_start, f"bad segment size {self.segment_size}"
            )
        self._sections = {}
        for name, value in self.header.get("sections", {}).items():
            try:
                offset, length = int(value[0]), int(value[1])
            except (TypeError, ValueError, IndexError):
                raise _corrupt(
                    path, header_start, f"malformed section entry {name!r}"
                ) from None
            if offset < 0 or length < 0 or self._base + offset + length > len(mm):
                raise _corrupt(
                    path,
                    self._base + max(offset, 0),
                    f"section {name!r} overruns the file "
                    f"({length} bytes at {offset})",
                )
            self._sections[name] = (self._base + offset, length)
        self._cache = _BlockCache(cache_blocks)
        self._documents: Optional[List[StoredDocument]] = None
        self._doc_meta: Optional[Tuple[array, array, array]] = None
        self._token_data = None  # (vocab list, decompressed stream, offsets)
        self._json_tokens = None
        self._ext_ids: Optional[List[str]] = None

    # -- lifecycle -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._mmap is None

    def close(self) -> None:
        """Release the mapping; idempotent, later block reads raise."""
        mm, self._mmap = self._mmap, None
        if mm is not None:
            mm.close()
        self._cache.clear()

    def __enter__(self) -> "BlockFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> mmap.mmap:
        mm = self._mmap
        if mm is None:
            raise StorageError(
                f"block file {self.path} is closed; reopen the index to read it"
            )
        return mm

    def _section(self, name: str, required: bool = True) -> bytes:
        mm = self._require_open()
        entry = self._sections.get(name)
        if entry is None:
            if required:
                raise _corrupt(
                    self.path, self._base, f"missing section {name!r}"
                )
            return b""
        offset, length = entry
        return mm[offset : offset + length]

    def section_size(self, name: str) -> int:
        entry = self._sections.get(name)
        return entry[1] if entry else 0

    # -- documents -----------------------------------------------------

    def external_ids(self) -> List[str]:
        if self._ext_ids is None:
            payload = self._section("ext_ids")
            offset = self._sections["ext_ids"][0]
            try:
                raw = zlib.decompress(payload)
            except zlib.error as exc:
                raise _corrupt(self.path, offset, f"bad ext_ids stream: {exc}")
            if self.header.get("ext_codec") == "json":
                try:
                    ids = json.loads(raw.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as exc:
                    raise _corrupt(self.path, offset, f"bad ext_ids json: {exc}")
            else:
                text = raw.decode("utf-8")
                ids = text.split("\n") if text else []
            if len(ids) != self.num_docs:
                raise _corrupt(
                    self.path,
                    offset,
                    f"{len(ids)} external ids for {self.num_docs} documents",
                )
            self._ext_ids = ids
        return self._ext_ids

    def _doc_meta_columns(self) -> Tuple[array, array, array]:
        """Decode (internal ids, lengths, unique-term counts) columns."""
        if self._doc_meta is None:
            meta = self._section("doc_meta")
            offset = self._sections["doc_meta"][0]
            expected = 3 * self.num_docs * 8
            if len(meta) != expected:
                raise _corrupt(
                    self.path,
                    offset,
                    f"doc_meta is {len(meta)} bytes, expected {expected}",
                )
            stride = self.num_docs * 8
            self._doc_meta = (
                _adopt_column(meta[:stride]),
                _adopt_column(meta[stride : 2 * stride]),
                _adopt_column(meta[2 * stride :]),
            )
        return self._doc_meta

    def document(self, doc_index: int) -> StoredDocument:
        """Materialise one document shell (token fields stay lazy)."""
        internal_ids, lengths, unique = self._doc_meta_columns()
        return StoredDocument(
            internal_id=internal_ids[doc_index],
            external_id=self.external_ids()[doc_index],
            field_tokens=_LazyFieldTokens(self, doc_index),
            length=lengths[doc_index],
            unique_terms=unique[doc_index],
        )

    def documents(self) -> List[StoredDocument]:
        """Materialise the document shells (token fields stay lazy)."""
        if self._documents is None:
            internal_ids, lengths, unique = self._doc_meta_columns()
            ext_ids = self.external_ids()
            self._documents = [
                StoredDocument(
                    internal_id=internal_ids[i],
                    external_id=ext_ids[i],
                    field_tokens=_LazyFieldTokens(self, i),
                    length=lengths[i],
                    unique_terms=unique[i],
                )
                for i in range(self.num_docs)
            ]
        return self._documents

    def document_store(self) -> "_LazyDocumentStore":
        """A :class:`DocumentStore` view that materialises per document.

        The cold-open fast path for flat v4 loads: the store starts
        empty, ``lengths()`` bulk-decodes the fixed-width metadata
        column, and ``get`` builds one shell per docid touched (memoised
        on the shared shell list).  Mutation or iteration hydrates every
        shell first, after which the inherited behaviour applies.
        """
        return _LazyDocumentStore(self)

    def _token_state(self):
        if self._token_data is None:
            dict_entry = self._sections.get("token_dict", (self._base, 0))
            try:
                raw_dict = zlib.decompress(self._section("token_dict"))
                stream = zlib.decompress(self._section("token_stream"))
            except zlib.error as exc:
                raise _corrupt(
                    self.path, dict_entry[0], f"bad token stream: {exc}"
                )
            text = raw_dict.decode("utf-8")
            vocab = text.split("\n") if text else []
            offsets = _adopt_column(self._section("token_offsets"))
            if len(offsets) != self.num_docs:
                raise _corrupt(
                    self.path,
                    self._sections["token_offsets"][0],
                    f"{len(offsets)} token offsets for {self.num_docs} documents",
                )
            self._token_data = (vocab, stream, offsets)
        return self._token_data

    def _doc_tokens(self, doc_index: int) -> Dict[str, List[str]]:
        if self.header.get("tokens_codec") == "json":
            if self._json_tokens is None:
                offset = self._sections["token_stream"][0]
                try:
                    raw = zlib.decompress(self._section("token_stream"))
                    self._json_tokens = json.loads(raw.decode("utf-8"))
                except (zlib.error, ValueError, UnicodeDecodeError) as exc:
                    raise _corrupt(
                        self.path, offset, f"bad token payload: {exc}"
                    )
            return {
                name: list(tokens)
                for name, tokens in self._json_tokens[doc_index].items()
            }
        vocab, stream, offsets = self._token_state()
        start = offsets[doc_index - 1] if doc_index > 0 else 0
        end = offsets[doc_index]
        cursor = start
        fields: Dict[str, List[str]] = {}
        try:
            num_fields, cursor = decode_varint(stream, cursor)
            for _ in range(num_fields):
                name_id, cursor = decode_varint(stream, cursor)
                count, cursor = decode_varint(stream, cursor)
                tokens = []
                for _ in range(count):
                    token_id, cursor = decode_varint(stream, cursor)
                    tokens.append(vocab[token_id])
                fields[vocab[name_id]] = tokens
        except (IndexError, IndexError_) as exc:  # bad vocab id / torn varint
            raise _corrupt(
                self.path,
                self._sections["token_stream"][0],
                f"token stream for document {doc_index}: {exc}",
            ) from None
        if cursor != end:
            raise _corrupt(
                self.path,
                self._sections["token_stream"][0],
                f"token stream for document {doc_index} decodes to byte "
                f"{cursor}, expected {end}",
            )
        return fields

    # -- posting lists -------------------------------------------------

    def _space_records(self, section: str) -> Dict[str, tuple]:
        payload = self._section(section)
        offset = self._sections[section][0]
        if len(payload) % _TERM_RECORD.size:
            raise _corrupt(
                self.path,
                offset,
                f"{section} is {len(payload)} bytes, not a multiple of "
                f"{_TERM_RECORD.size}",
            )
        terms_text = self._section("terms_text")
        records = {}
        for values in _TERM_RECORD.iter_unpack(payload):
            term_off, term_len, _reserved, count, max_tf, meta_off, data_off = values
            if term_off + term_len > len(terms_text):
                raise _corrupt(
                    self.path,
                    offset,
                    f"term record points past terms_text "
                    f"({term_off}+{term_len})",
                )
            term = terms_text[term_off : term_off + term_len].decode("utf-8")
            records[term] = (count, max_tf, meta_off, data_off)
        return records

    def posting_map(self, space: str = "content") -> "_LazyPostingMap":
        """The term -> lazy posting list mapping for one space.

        Only the fixed-width term dictionary is parsed here; each
        term's skip metadata and :class:`LazyPostingList` shell build
        on first access through the returned mapping, so opening a
        file costs O(dictionary bytes), not O(vocabulary) objects.
        """
        section = "content_index" if space == "content" else "predicate_index"
        return _LazyPostingMap(self, self._space_records(section))

    def _build_posting_list(self, term: str, record: tuple) -> LazyPostingList:
        """Materialise one term's skip metadata and lazy list shell."""
        count, max_tf, meta_off, data_off = record
        mm = self._require_open()
        entry = self._sections.get("block_meta")
        if entry is None:
            raise _corrupt(self.path, self._base, "missing section 'block_meta'")
        meta_base, meta_len = entry
        seg = self.segment_size
        num_blocks = (count + seg - 1) // seg
        need = 4 * num_blocks * 8
        if meta_off + need > meta_len:
            raise _corrupt(
                self.path,
                meta_base + meta_off,
                f"block metadata for term {term!r} overruns its section",
            )
        stride = num_blocks * 8
        cursor = meta_base + meta_off
        seg_mins = _adopt_column(mm[cursor : cursor + stride])
        cursor += stride
        seg_maxes = _adopt_column(mm[cursor : cursor + stride])
        cursor += stride
        seg_max_tfs = _adopt_column(mm[cursor : cursor + stride])
        cursor += stride
        block_ends = _adopt_column(mm[cursor : cursor + stride])
        return LazyPostingList(
            term,
            count,
            seg,
            max_tf,
            seg_mins,
            seg_maxes,
            seg_max_tfs,
            self._make_loader(term, count, data_off, block_ends, seg_maxes),
        )

    def _make_loader(self, term, count, data_off, block_ends, seg_maxes):
        def load(block: int):
            key = (data_off, block)
            cached = self._cache.get(key)
            if cached is not None:
                return cached
            mm = self._require_open()
            blocks_base, blocks_len = self._sections["blocks"]
            start = block_ends[block - 1] if block > 0 else 0
            end = block_ends[block]
            if not 0 <= start <= end or data_off + end > blocks_len:
                raise _corrupt(
                    self.path,
                    blocks_base + data_off,
                    f"block {block} of term {term!r} has invalid frame "
                    f"bounds [{start}, {end})",
                )
            frame = mm[
                blocks_base + data_off + start : blocks_base + data_off + end
            ]
            block_count = min(self.segment_size, count - block * self.segment_size)
            prev = seg_maxes[block - 1] if block > 0 else -1
            try:
                columns = decode_block(frame, block_count, prev)
            except StorageError as exc:
                raise _corrupt(
                    self.path,
                    blocks_base + data_off + start,
                    f"block {block} of term {term!r}: {exc}",
                ) from None
            ids = columns[0]
            if len(ids) != block_count or (
                len(ids) and ids[-1] != seg_maxes[block]
            ):
                raise _corrupt(
                    self.path,
                    blocks_base + data_off + start,
                    f"block {block} of term {term!r} decodes inconsistently "
                    f"with its skip metadata",
                )
            self._cache.put(key, columns)
            return columns

        return load

    def global_ids(self) -> Optional[array]:
        if "global_ids" not in self._sections:
            return None
        payload = self._section("global_ids")
        if len(payload) != self.num_docs * 8:
            raise _corrupt(
                self.path,
                self._sections["global_ids"][0],
                f"global_ids is {len(payload)} bytes for {self.num_docs} documents",
            )
        return _adopt_column(payload)
