"""Boolean retrieval over the inverted index.

This is the "standard text search system" layer: conjunctive keyword
retrieval with selective-first ordering and skip pointers.  Ranked search
lives one level up (:mod:`repro.core.engine`) because ranking needs the
statistics framework; keeping this layer boolean-only avoids a circular
dependency and mirrors how the paper drives Lucene ("we simulate the
execution plan ... by issuing multiple conventional keyword queries").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import QueryError
from .intersection import intersect_many
from .inverted_index import InvertedIndex
from .postings import CostCounter, PostingList


class BooleanSearcher:
    """Conjunctive boolean retrieval over content and predicate terms.

    Every method accepts an optional :class:`CostCounter` so the engine can
    attribute work to the plan operator that requested it.
    """

    def __init__(self, index: InvertedIndex, use_skips: bool = True):
        self.index = index
        self.use_skips = use_skips

    def _content_lists(self, keywords: Sequence[str]) -> List[PostingList]:
        if not keywords:
            raise QueryError("at least one keyword is required")
        return [self.index.postings(w) for w in keywords]

    def _predicate_lists(self, predicates: Sequence[str]) -> List[PostingList]:
        if not predicates:
            raise QueryError("at least one context predicate is required")
        return [self.index.predicate_postings(m) for m in predicates]

    def search_keywords(
        self,
        keywords: Sequence[str],
        counter: Optional[CostCounter] = None,
    ) -> List[int]:
        """Docids containing all ``keywords``: ``σ_w1(D) ∩ … ∩ σ_wn(D)``."""
        return intersect_many(
            self._content_lists(keywords), counter, use_skips=self.use_skips
        )

    def search_context(
        self,
        predicates: Sequence[str],
        counter: Optional[CostCounter] = None,
    ) -> List[int]:
        """Materialise a context: ``σ_P(D) = L_m1 ∩ … ∩ L_mc``.

        This is the bottom of the Figure 3 plan and the expensive step the
        materialized-view technique exists to avoid.
        """
        return intersect_many(
            self._predicate_lists(predicates), counter, use_skips=self.use_skips
        )

    def search_conjunction(
        self,
        keywords: Sequence[str],
        predicates: Sequence[str],
        counter: Optional[CostCounter] = None,
    ) -> List[int]:
        """Unranked result of ``Q_c``: documents matching all keywords *and*
        all context predicates (equivalently, the conventional query
        ``Q_t = Q_k ∪ P`` with predicates as boolean filters).

        Free to start from the most selective list across both spaces —
        the optimisation conventional queries enjoy but pure context
        materialisation cannot.
        """
        lists = self._content_lists(keywords) + self._predicate_lists(predicates)
        return intersect_many(lists, counter, use_skips=self.use_skips)

    def context_size(self, predicates: Sequence[str]) -> int:
        """``ContextSize(P)`` computed by materialisation (no cost charged).

        Used by workload generators and tests; the engine itself never
        calls this on the query path.
        """
        return len(self.search_context(predicates))
