"""The inverted index: the Lucene stand-in the whole system builds on.

Two posting spaces are kept, mirroring the paper's setup over PubMed:

* the **content** space indexes the searchable fields (title, abstract) —
  keyword queries ``Q_k`` run here;
* the **predicate** space indexes the predicate field (MeSH annotations) —
  context specifications ``P`` run here (Definition 1).

Both are `<docid, tf>` posting lists with skip pointers.  Collection-wide
statistics over the *whole* collection (``df(w, D)``, ``len(D)``, ``|D|``)
are maintained at index time, exactly as conventional engines do; only the
per-context versions need query-time work.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import IndexError_
from .analysis import Analyzer, KeywordAnalyzer
from .documents import Document, DocumentStore, StoredDocument
from .postings import DEFAULT_SEGMENT_SIZE, PostingList

DEFAULT_SEARCHABLE_FIELDS = ("title", "abstract")
DEFAULT_PREDICATE_FIELD = "mesh"


def analyze_document_fields(
    document: Document,
    analyzer: Analyzer,
    predicate_analyzer: Analyzer,
    searchable_fields: Sequence[str],
    predicate_field: str,
) -> Dict[str, List[str]]:
    """Analyse searchable/predicate fields; keep other fields raw.

    The one analysis routine shared by the flat index and the segment
    lifecycle's memtable, so a WAL replay or a segment rebuild produces
    token streams bit-identical to the original ingest.  Extra fields
    (e.g. a ``year`` attribute) are whitespace-split and stored
    unanalysed so attribute indexes can be rebuilt from the index.
    """
    field_tokens: Dict[str, List[str]] = {}
    for name in searchable_fields:
        field_tokens[name] = analyzer.analyze(document.text(name))
    field_tokens[predicate_field] = predicate_analyzer.analyze(
        document.text(predicate_field)
    )
    for name, text in document.fields.items():
        if name not in field_tokens:
            field_tokens[name] = text.split()
    return field_tokens


def content_term_frequencies(
    field_tokens: Dict[str, List[str]], searchable_fields: Sequence[str]
) -> Dict[str, int]:
    """``tf(w, d)`` over the searchable fields of one analysed document."""
    tf_counts: Dict[str, int] = {}
    for name in searchable_fields:
        for token in field_tokens.get(name, ()):
            tf_counts[token] = tf_counts.get(token, 0) + 1
    return tf_counts


class InvertedIndex:
    """In-memory inverted index over a document collection.

    Usage::

        index = InvertedIndex()
        for doc in docs:
            index.add(doc)
        index.commit()

    Reads (postings, statistics) are only valid after :meth:`commit`.
    """

    def __init__(
        self,
        analyzer: Optional[Analyzer] = None,
        predicate_analyzer: Optional[Analyzer] = None,
        searchable_fields: Sequence[str] = DEFAULT_SEARCHABLE_FIELDS,
        predicate_field: str = DEFAULT_PREDICATE_FIELD,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
    ):
        self.analyzer = analyzer if analyzer is not None else Analyzer()
        self.predicate_analyzer = (
            predicate_analyzer if predicate_analyzer is not None else KeywordAnalyzer()
        )
        self.searchable_fields = tuple(searchable_fields)
        self.predicate_field = predicate_field
        self.segment_size = segment_size

        self.store = DocumentStore()
        self._content_acc: Dict[str, List[Tuple[int, int]]] = {}
        self._predicate_acc: Dict[str, List[Tuple[int, int]]] = {}
        self._content: Dict[str, PostingList] = {}
        self._predicates: Dict[str, PostingList] = {}
        self._total_length = 0
        self._committed = False
        # The single mutation clock (see repro.core.backend); a sharded
        # wrapper rebinds this so all shards tick one clock.  Imported
        # here, not at module level: repro.index initialises before
        # repro.core during package import.
        from ..core.backend import VersionClock

        self._clock = VersionClock()
        self._empty = PostingList.from_pairs("", (), segment_size=segment_size)
        # OS-level resources this index owns (the mmap reader behind a
        # block-format load); released by close().
        self._resources: List = []

    # -- construction ----------------------------------------------------

    def add(self, document: Document) -> StoredDocument:
        """Analyse and index one document."""
        if self._committed:
            raise IndexError_("index is committed; create a new index to add documents")
        field_tokens = self._analyze_fields(document)
        stored = self.store.add(document, field_tokens, self.searchable_fields)
        self._total_length += stored.length

        tf_counts = content_term_frequencies(field_tokens, self.searchable_fields)
        for term, tf in tf_counts.items():
            self._content_acc.setdefault(term, []).append((stored.internal_id, tf))

        # Predicate occurrences are set-valued: a MeSH term either annotates
        # a citation or it does not, so tf is clamped to 1.
        for term in set(field_tokens[self.predicate_field]):
            self._predicate_acc.setdefault(term, []).append((stored.internal_id, 1))
        return stored

    def _analyze_fields(self, document: Document) -> Dict[str, List[str]]:
        """Analyse one document with this index's configuration."""
        return analyze_document_fields(
            document,
            self.analyzer,
            self.predicate_analyzer,
            self.searchable_fields,
            self.predicate_field,
        )

    def add_preanalyzed(
        self, external_id: str, field_tokens: Dict[str, List[str]]
    ) -> StoredDocument:
        """Index one document whose fields are already token streams.

        Mirrors :meth:`add` with analysis skipped — the ingestion path for
        persisted indexes (tokens were analysed at save time) and for
        shard builders redistributing an already-analysed collection.
        """
        if self._committed:
            raise IndexError_("index is committed; create a new index to add documents")
        document = Document(external_id, fields={})
        stored = self.store.add(document, field_tokens, self.searchable_fields)
        self._total_length += stored.length

        tf_counts = content_term_frequencies(field_tokens, self.searchable_fields)
        for term, tf in tf_counts.items():
            self._content_acc.setdefault(term, []).append((stored.internal_id, tf))
        for term in set(field_tokens.get(self.predicate_field, ())):
            self._predicate_acc.setdefault(term, []).append((stored.internal_id, 1))
        return stored

    def add_all(self, documents: Iterable[Document]) -> None:
        """Index a stream of documents."""
        for document in documents:
            self.add(document)

    def commit(self) -> "InvertedIndex":
        """Freeze all posting lists; the index becomes readable.

        Idempotent; returns self for chaining.
        """
        if self._committed:
            return self
        self._content = {
            term: PostingList.from_pairs(term, pairs, segment_size=self.segment_size)
            for term, pairs in self._content_acc.items()
        }
        self._predicates = {
            term: PostingList.from_pairs(term, pairs, segment_size=self.segment_size)
            for term, pairs in self._predicate_acc.items()
        }
        self._content_acc.clear()
        self._predicate_acc.clear()
        self._committed = True
        return self

    def append_documents(
        self, documents: Iterable[Document]
    ) -> List[StoredDocument]:
        """Incrementally add documents to a *committed* index.

        New internal docids are larger than all existing ones, so every
        affected posting list extends at its tail — no existing entry is
        rewritten and the paper's docid-ordering invariant is preserved.
        Returns the stored forms of the new documents so callers (e.g.
        :func:`repro.views.maintenance.maintain_catalog`) can propagate
        the same delta to materialized views.
        """
        if not self._committed:
            raise IndexError_(
                "append_documents requires a committed index; "
                "use add()/commit() during initial construction"
            )
        new_stored: List[StoredDocument] = []
        content_delta: Dict[str, List[Tuple[int, int]]] = {}
        predicate_delta: Dict[str, List[Tuple[int, int]]] = {}
        for document in documents:
            field_tokens = self._analyze_fields(document)
            stored = self.store.add(document, field_tokens, self.searchable_fields)
            self._total_length += stored.length
            new_stored.append(stored)

            tf_counts = content_term_frequencies(
                field_tokens, self.searchable_fields
            )
            for term, tf in tf_counts.items():
                content_delta.setdefault(term, []).append(
                    (stored.internal_id, tf)
                )
            for term in set(field_tokens[self.predicate_field]):
                predicate_delta.setdefault(term, []).append(
                    (stored.internal_id, 1)
                )

        for term, pairs in content_delta.items():
            plist = self._content.get(term)
            if plist is None:
                self._content[term] = PostingList.from_pairs(
                    term, pairs, segment_size=self.segment_size
                )
            else:
                plist.extend(pairs)
        for term, pairs in predicate_delta.items():
            plist = self._predicates.get(term)
            if plist is None:
                self._predicates[term] = PostingList.from_pairs(
                    term, pairs, segment_size=self.segment_size
                )
            else:
                plist.extend(pairs)
        self._clock.advance()
        return new_stored

    # -- reads -------------------------------------------------------------

    @property
    def committed(self) -> bool:
        return self._committed

    @property
    def epoch(self) -> int:
        """The index's :class:`~repro.lifecycle.version.VersionClock` value.

        One committed mutation (post-commit document batch here; delete,
        flush, or compaction in the segment lifecycle) is one tick.
        Caches layered above the index (statistics memoisation, the query
        service's result cache) key or guard their entries with this
        value, so anything resolved against an older collection state
        becomes unreachable the moment the index changes.  Every
        freshness consumer reads this one clock — there are no other
        epoch counters in the system.
        """
        return self._clock.version

    def __len__(self) -> int:
        return len(self.store)

    @property
    def num_docs(self) -> int:
        """Collection cardinality ``|D|``."""
        return len(self.store)

    @property
    def total_length(self) -> int:
        """Collection length ``len(D)``: total searchable tokens."""
        return self._total_length

    @property
    def vocabulary(self) -> Sequence[str]:
        """All indexed content terms (``utc(D)`` is its length)."""
        self._require_committed()
        return tuple(self._content)

    @property
    def predicate_vocabulary(self) -> Sequence[str]:
        """All indexed predicate (context-keyword) terms."""
        self._require_committed()
        return tuple(self._predicates)

    def postings(self, term: str) -> PostingList:
        """Content posting list ``L_w`` (empty list for unknown terms)."""
        self._require_committed()
        return self._content.get(term, self._empty)

    def prefetch(
        self, terms: Iterable[str], predicates: Iterable[str] = ()
    ) -> Dict[str, PostingList]:
        """Resolve many posting lists in one pass (batch-executor helper).

        Returns a term → list mapping covering both spaces (content terms
        first; predicate terms override on collision, which cannot happen
        for analysed queries since the spaces use different analyzers).
        The lists are the index's shared in-memory columns — no copies —
        so a batch of queries holds each decoded column exactly once.
        """
        self._require_committed()
        fetched = {term: self.postings(term) for term in terms}
        for term in predicates:
            fetched[term] = self.predicate_postings(term)
        return fetched

    def predicate_postings(self, term: str) -> PostingList:
        """Predicate posting list ``L_m`` (empty list for unknown terms)."""
        self._require_committed()
        return self._predicates.get(term, self._empty)

    def content_items(self) -> Iterable[Tuple[str, PostingList]]:
        """All ``(term, posting list)`` pairs of the content space.

        The storage codec serialises the compiled columns directly from
        here; the view is read-only by convention.
        """
        self._require_committed()
        return self._content.items()

    def predicate_items(self) -> Iterable[Tuple[str, PostingList]]:
        """All ``(term, posting list)`` pairs of the predicate space."""
        self._require_committed()
        return self._predicates.items()

    def document_frequency(self, term: str) -> int:
        """``df(w, D)`` over the whole collection."""
        return len(self.postings(term))

    def predicate_frequency(self, term: str) -> int:
        """Number of documents annotated with predicate ``m`` (``|L_m|``)."""
        return len(self.predicate_postings(term))

    def document_lengths(self) -> List[int]:
        """Dense ``len(d)`` column indexed by internal docid."""
        return self.store.lengths()

    def average_document_length(self) -> float:
        """``avgdl = len(D) / |D|`` over the whole collection."""
        if not self.store:
            return 0.0
        return self._total_length / len(self.store)

    def _require_committed(self) -> None:
        if not self._committed:
            raise IndexError_("index must be committed before reads")

    # -- resource lifecycle ------------------------------------------------

    def attach_resource(self, resource) -> None:
        """Adopt an OS-level resource (an object with ``close()``).

        Block-format loads attach their mmap reader here so the index
        controls its lifetime: posting lists stay lazily decodable for
        as long as the index is open, and :meth:`close` releases the
        mapping deterministically.
        """
        self._resources.append(resource)

    def close(self) -> None:
        """Release attached resources (idempotent).

        After close, any posting block not yet decoded is unreadable, so
        only call it when the index is no longer queried.  Purely
        in-memory indexes hold no resources and close as a no-op.
        """
        resources, self._resources = self._resources, []
        for resource in resources:
            resource.close()

    def __enter__(self) -> "InvertedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @classmethod
    def from_compiled(
        cls,
        stored_documents: Iterable[StoredDocument],
        content: Dict[str, PostingList],
        predicates: Dict[str, PostingList],
        analyzer: Optional[Analyzer] = None,
        predicate_analyzer: Optional[Analyzer] = None,
        searchable_fields: Sequence[str] = DEFAULT_SEARCHABLE_FIELDS,
        predicate_field: str = DEFAULT_PREDICATE_FIELD,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
    ) -> "InvertedIndex":
        """Assemble a committed index from precompiled parts.

        The fast load path: posting lists and per-document statistics
        were computed (and persisted) at save time, so construction is
        O(documents + postings) with no re-tokenisation and no posting
        accumulation.  Callers own the invariants (docids dense and in
        insertion order, postings consistent with the documents) — the
        version-2 storage codec and the segment compactor are the
        intended callers.
        """
        index = cls(
            analyzer=analyzer,
            predicate_analyzer=predicate_analyzer,
            searchable_fields=searchable_fields,
            predicate_field=predicate_field,
            segment_size=segment_size,
        )
        total_length = 0
        for stored in stored_documents:
            index.store.add_restored(stored)
            total_length += stored.length
        index._total_length = total_length
        index._content = dict(content)
        index._predicates = dict(predicates)
        index._committed = True
        return index

    @classmethod
    def from_restored_store(
        cls,
        store: DocumentStore,
        content: Dict[str, PostingList],
        predicates: Dict[str, PostingList],
        analyzer: Optional[Analyzer] = None,
        predicate_analyzer: Optional[Analyzer] = None,
        searchable_fields: Sequence[str] = DEFAULT_SEARCHABLE_FIELDS,
        predicate_field: str = DEFAULT_PREDICATE_FIELD,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
    ) -> "InvertedIndex":
        """Assemble a committed index around an already-built store.

        The mmap-backed cold-open path: unlike :meth:`from_compiled`
        there is no per-document restore loop and the posting mappings
        are adopted as-is (not copied), so lazy per-term mappings stay
        lazy and opening costs O(dictionary), not O(collection).  The
        store must already satisfy the dense-docid invariant.
        """
        index = cls(
            analyzer=analyzer,
            predicate_analyzer=predicate_analyzer,
            searchable_fields=searchable_fields,
            predicate_field=predicate_field,
            segment_size=segment_size,
        )
        index.store = store
        index._total_length = sum(store.lengths())
        index._content = content
        index._predicates = predicates
        index._committed = True
        return index


def build_index(
    documents: Iterable[Document],
    analyzer: Optional[Analyzer] = None,
    searchable_fields: Sequence[str] = DEFAULT_SEARCHABLE_FIELDS,
    predicate_field: str = DEFAULT_PREDICATE_FIELD,
    segment_size: int = DEFAULT_SEGMENT_SIZE,
) -> InvertedIndex:
    """Convenience: build and commit an index over ``documents``."""
    index = InvertedIndex(
        analyzer=analyzer,
        searchable_fields=searchable_fields,
        predicate_field=predicate_field,
        segment_size=segment_size,
    )
    index.add_all(documents)
    return index.commit()
