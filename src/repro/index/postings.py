"""Posting lists with skip pointers over columnar array storage (Section 3.2.1).

An inverted-list entry is a ``<docid, tf>`` pair; lists are ordered by
docid so two lists can be merge-joined.  Lists are partitioned into
segments of ``M0`` entries and a skip pointer is kept per segment,
exactly the structure the paper's cost model is written against:

    cost(L_i ∩ L_j) = M0 · (N_i^o + N_j^o)

where ``N^o`` counts segments whose docid ranges overlap the other list.

Storage layout: the docid and tf columns are ``array('q')`` (signed
64-bit, contiguous C buffers), not Python lists.  The skip table is
likewise three parallel ``array('q')`` columns (segment start index,
segment min docid, segment max docid).  The columnar layout keeps every
cursor operation (`skip_to`, `contains`, `tf_for`, `overlapping_segments`)
a ``bisect`` over a flat buffer instead of a Python-level scan, and it is
what the galloping intersection kernels in :mod:`repro.index.kernels`
probe directly.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

DEFAULT_SEGMENT_SIZE = 64

_EMPTY_COLUMN = array("q")


@dataclass
class CostCounter:
    """Accumulates the observable work of list operations.

    ``entries_scanned``
        posting entries actually visited (or probed) by merges and
        aggregations.
    ``segments_skipped``
        whole segments jumped over via skip pointers or galloping leaps.
    ``model_cost``
        the paper's analytic cost ``M0 · (N_i^o + N_j^o)`` summed over all
        intersections charged to this counter (aggregations charge their
        scan length).  Benches report this next to wall-clock time.
    """

    entries_scanned: int = 0
    segments_skipped: int = 0
    model_cost: int = 0

    def merge(self, other: "CostCounter") -> None:
        """Fold another counter's totals into this one."""
        self.entries_scanned += other.entries_scanned
        self.segments_skipped += other.segments_skipped
        self.model_cost += other.model_cost

    def copy(self) -> "CostCounter":
        """An independent counter with the same totals."""
        return CostCounter(
            entries_scanned=self.entries_scanned,
            segments_skipped=self.segments_skipped,
            model_cost=self.model_cost,
        )

    def reset(self) -> None:
        """Zero all totals."""
        self.entries_scanned = 0
        self.segments_skipped = 0
        self.model_cost = 0


class PostingList:
    """An immutable-after-freeze inverted list with per-segment skips.

    Built incrementally by the indexer via :meth:`append` (docids must
    arrive in strictly increasing order), then :meth:`freeze` computes the
    skip table.  Reads before ``freeze`` are not supported.  Bulk
    construction from already-sorted columns goes through
    :meth:`from_arrays`, which skips per-element Python work.
    """

    __slots__ = (
        "term",
        "doc_ids",
        "tfs",
        "segment_size",
        "_skip_starts",
        "_seg_mins",
        "_seg_maxes",
        "_seg_max_tfs",
        "_max_tf",
        "_frozen",
    )

    def __init__(self, term: str, segment_size: int = DEFAULT_SEGMENT_SIZE):
        if segment_size < 2:
            raise ValueError(f"segment_size must be >= 2, got {segment_size}")
        self.term = term
        self.doc_ids: array = array("q")
        self.tfs: array = array("q")
        self.segment_size = segment_size
        self._skip_starts: array = _EMPTY_COLUMN
        self._seg_mins: array = _EMPTY_COLUMN
        self._seg_maxes: array = _EMPTY_COLUMN
        self._seg_max_tfs: array = _EMPTY_COLUMN
        self._max_tf = 0
        self._frozen = False

    # -- construction --------------------------------------------------

    def append(self, doc_id: int, tf: int) -> None:
        """Append one posting; docids must be strictly increasing."""
        if self._frozen:
            raise RuntimeError(f"posting list for {self.term!r} is frozen")
        if self.doc_ids and doc_id <= self.doc_ids[-1]:
            raise ValueError(
                f"docids must be strictly increasing: {doc_id} after {self.doc_ids[-1]}"
            )
        if tf <= 0:
            raise ValueError(f"tf must be positive, got {tf}")
        self.doc_ids.append(doc_id)
        self.tfs.append(tf)

    def freeze(
        self,
        max_tf: Optional[int] = None,
        block_max_tfs: Optional[Sequence[int]] = None,
    ) -> "PostingList":
        """Finalise the list and build the skip table; returns self.

        ``max_tf`` lets a caller that already knows the maximum term
        frequency (the version-2 storage codec persists it) skip the
        O(postings) scan.  ``block_max_tfs`` likewise adopts a persisted
        per-segment max-tf column (version-3 payloads); it must have one
        entry per skip segment.  When absent, the per-segment maxima are
        computed here — one C-level slice+max per segment — and when
        ``max_tf`` is also absent it is derived from them instead of a
        second full scan.
        """
        if not self._frozen:
            n = len(self.doc_ids)
            seg = self.segment_size
            self._skip_starts = array("q", range(0, n, seg))
            self._seg_mins = array(
                "q", (self.doc_ids[start] for start in self._skip_starts)
            )
            self._seg_maxes = array(
                "q",
                (self.doc_ids[min(start + seg, n) - 1] for start in self._skip_starts),
            )
            if block_max_tfs is not None:
                col = (
                    block_max_tfs
                    if isinstance(block_max_tfs, array)
                    else array("q", block_max_tfs)
                )
                if len(col) != len(self._skip_starts):
                    raise ValueError(
                        f"block max-tf column has {len(col)} entries for "
                        f"{len(self._skip_starts)} segments"
                    )
                self._seg_max_tfs = col
            else:
                tfs = self.tfs
                self._seg_max_tfs = array(
                    "q", (max(tfs[start : start + seg]) for start in self._skip_starts)
                )
            if max_tf is not None:
                self._max_tf = max_tf
            else:
                self._max_tf = max(self._seg_max_tfs) if self._seg_max_tfs else 0
            self._frozen = True
        return self

    @classmethod
    def from_pairs(
        cls,
        term: str,
        pairs: Iterable[Tuple[int, int]],
        segment_size: int = DEFAULT_SEGMENT_SIZE,
    ) -> "PostingList":
        """Build and freeze a list from ``(docid, tf)`` pairs (sorted)."""
        plist = cls(term, segment_size=segment_size)
        for doc_id, tf in pairs:
            plist.append(doc_id, tf)
        return plist.freeze()

    @classmethod
    def from_arrays(
        cls,
        term: str,
        doc_ids: Sequence[int],
        tfs: Sequence[int],
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        validate: bool = True,
        max_tf: Optional[int] = None,
        block_max_tfs: Optional[Sequence[int]] = None,
    ) -> "PostingList":
        """Build and freeze a list from parallel docid/tf columns.

        The columns are adopted wholesale (one C-level copy into
        ``array('q')``), so this is the fast path for bulk construction —
        codec decodes and kernel outputs use it instead of per-element
        :meth:`append`.  The same invariants are enforced — docids
        strictly increasing, tfs positive — unless ``validate=False``,
        the trusted path for columns this library produced itself
        (segment compaction, snapshot compilation, version-2 artefact
        decode), where the per-element check would dominate load time.
        """
        plist = cls(term, segment_size=segment_size)
        ids = doc_ids if isinstance(doc_ids, array) else array("q", doc_ids)
        freqs = tfs if isinstance(tfs, array) else array("q", tfs)
        if len(ids) != len(freqs):
            raise ValueError(
                f"column length mismatch: {len(ids)} docids vs {len(freqs)} tfs"
            )
        if validate:
            previous = None
            for doc_id in ids:
                if previous is not None and doc_id <= previous:
                    raise ValueError(
                        f"docids must be strictly increasing: {doc_id} after {previous}"
                    )
                previous = doc_id
            if freqs and min(freqs) <= 0:
                raise ValueError("tf must be positive")
        plist.doc_ids = ids
        plist.tfs = freqs
        return plist.freeze(max_tf=max_tf, block_max_tfs=block_max_tfs)

    def extend(self, pairs: Iterable[Tuple[int, int]]) -> "PostingList":
        """Append postings to a frozen list and rebuild the skip table.

        Because internal docids are assigned in insertion order, new
        documents always append at the tail, so incremental index updates
        never need to rewrite existing entries — only the skip table is
        recomputed (O(#segments)).  Returns self.
        """
        self._frozen = False
        try:
            for doc_id, tf in pairs:
                self.append(doc_id, tf)
        finally:
            # Leave the list frozen and internally consistent even if a
            # bad pair aborted the append loop part-way.
            self._frozen = False
            self.freeze()
        return self

    # -- reads ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.doc_ids)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self.doc_ids, self.tfs))

    def __repr__(self) -> str:
        return f"PostingList(term={self.term!r}, len={len(self)})"

    @property
    def max_tf(self) -> int:
        """Largest tf in the list (0 when empty), computed at freeze time.

        Top-k scorers derive per-term score upper bounds from this; caching
        it here removes an O(list length) scan per query term per query.
        """
        self._require_frozen()
        return self._max_tf

    @property
    def num_segments(self) -> int:
        """Number of skip segments (``ceil(len / M0)``)."""
        return len(self._skip_starts)

    @property
    def block_max_tfs(self) -> Sequence[int]:
        """Largest tf per skip segment, one entry per segment.

        Block-max top-k converts these into per-block score upper bounds;
        the blocks are exactly the skip segments of
        :meth:`segment_bounds`, so a scorer can skip straight to a
        segment boundary when the summed block bounds cannot beat the
        current threshold.
        """
        self._require_frozen()
        return self._seg_max_tfs

    def segment_bounds(self) -> Sequence[Tuple[int, int]]:
        """Return ``(start index, max docid)`` per segment (frozen lists)."""
        self._require_frozen()
        return tuple(zip(self._skip_starts, self._seg_maxes))

    def _segment_position(self, doc_id: int) -> int:
        """Position of ``doc_id`` if present, else ``len(self)``.

        Routes through the skip table first: one bisect over the segment
        max-docid column picks the only segment that can hold ``doc_id``,
        then a bisect over that segment alone finds it.  Bounding the
        docid probe to one segment matters for lazily materialised
        columns — a membership test decodes at most one block instead of
        O(log n) scattered blocks.
        """
        self._require_frozen()
        seg = bisect_left(self._seg_maxes, doc_id)
        if seg >= len(self._seg_maxes):
            return len(self.doc_ids)
        start = self._skip_starts[seg]
        end = min(len(self.doc_ids), start + self.segment_size)
        pos = bisect_left(self.doc_ids, doc_id, start, end)
        if pos < end and self.doc_ids[pos] == doc_id:
            return pos
        return len(self.doc_ids)

    def contains(self, doc_id: int) -> bool:
        """Binary-search membership test (no cost accounting)."""
        return self._segment_position(doc_id) < len(self.doc_ids)

    def tf_for(self, doc_id: int) -> Optional[int]:
        """Return the stored tf for ``doc_id`` or ``None`` if absent."""
        pos = self._segment_position(doc_id)
        if pos < len(self.doc_ids):
            return self.tfs[pos]
        return None

    def skip_to(self, position: int, target: int, counter: Optional[CostCounter]) -> int:
        """Advance ``position`` toward the first entry with docid >= target.

        Uses the skip table to jump whole segments whose max docid is below
        ``target``, then binary-searches within the landing segment.  Cost
        accounting matches the sequential formulation exactly: one skipped
        segment per skip-pointer jump, one scanned entry per in-segment
        entry passed over.  Returns the new position (may be ``len(self)``
        when exhausted).
        """
        self._require_frozen()
        n = len(self.doc_ids)
        if position >= n:
            # Exhausted cursor: nothing to advance (also keeps ``seg``
            # inside the skip table when n is a segment-size multiple).
            return position
        seg = position // self.segment_size
        # Jump over fully-passed segments: land on the first segment whose
        # max docid reaches the target (clamped to the last segment).
        landing = bisect_left(self._seg_maxes, target, seg)
        if landing >= len(self._seg_maxes):
            landing = len(self._seg_maxes) - 1
        if counter is not None:
            counter.segments_skipped += landing - seg
        landing_start = self._skip_starts[landing] if self._skip_starts else 0
        scan_start = max(position, landing_start)
        # The landing segment is the first whose max docid reaches the
        # target, so the answer lies inside it (or is ``n`` when the
        # target exceeds every docid).  Clamping the bisect to the
        # segment keeps the probe decode-local for lazy columns: a skip
        # touches exactly one block, never a binary search across the
        # whole compressed list.
        scan_end = min(n, landing_start + self.segment_size)
        new_position = bisect_left(self.doc_ids, target, scan_start, scan_end)
        if counter is not None:
            counter.entries_scanned += new_position - scan_start
        return new_position

    def overlapping_segments(self, other: "PostingList") -> int:
        """Count this list's segments whose docid range overlaps ``other``.

        This is the ``N_i^o`` quantity of the paper's intersection cost
        model.  Segments are docid-ordered, so the overlapping ones form a
        contiguous run found with two binary searches over the skip
        columns — O(log #segments) work.
        """
        self._require_frozen()
        other._require_frozen()
        if not self.doc_ids or not other.doc_ids:
            return 0
        other_min, other_max = other.doc_ids[0], other.doc_ids[-1]
        # First segment whose max reaches other's range, and first segment
        # whose min is already past it.
        lo = bisect_left(self._seg_maxes, other_min)
        hi = bisect_right(self._seg_mins, other_max)
        return max(0, hi - lo)

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise RuntimeError(
                f"posting list for {self.term!r} must be frozen before reads"
            )


class LazyColumn:
    """Read-only sequence view over one column of a block-compressed list.

    Quacks like the ``array('q')`` columns it replaces for every read
    the engine performs — ``len``, indexing (including negative),
    iteration, ``bisect`` probes — but decodes postings block by block
    through the owning :class:`LazyPostingList` only when an element is
    actually touched.  Deliberately *not* an ``array`` subclass: the
    intersection kernels test ``isinstance(x, array)`` to choose their
    dense C paths and must fall back to the index-probe path here.
    """

    __slots__ = ("_owner", "_select")

    def __init__(self, owner: "LazyPostingList", select: int):
        self._owner = owner
        self._select = select

    def __len__(self) -> int:
        return self._owner._count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return array(
                "q",
                (self[i] for i in range(*index.indices(self._owner._count))),
            )
        n = self._owner._count
        if index < 0:
            index += n
        if index < 0 or index >= n:
            raise IndexError("posting column index out of range")
        block, offset = divmod(index, self._owner.segment_size)
        return self._owner._block(block)[self._select][offset]

    def __iter__(self) -> Iterator[int]:
        owner = self._owner
        select = self._select
        for block in range(len(owner._skip_starts)):
            yield from owner._block(block)[select]

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        try:
            if len(other) != len(self):
                return False
        except TypeError:
            return NotImplemented
        return all(a == b for a, b in zip(self, other))

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None

    def __repr__(self) -> str:
        return (
            f"LazyColumn({'doc_ids' if self._select == 0 else 'tfs'} of "
            f"{self._owner.term!r}, len={len(self)})"
        )


class LazyPostingList(PostingList):
    """A frozen posting list whose columns decode on demand.

    Constructed straight from persisted metadata — posting count,
    cached ``max_tf``, and the per-segment skip/block-max columns — so
    every pre-decode read (score bounds, block-max skipping, segment
    overlap counting) runs without touching the compressed payload.
    Element access goes through ``loader(block_index) -> (ids, tfs)``,
    typically a closure over an mmap-backed block file with an LRU of
    decoded blocks; a one-block memo on the list keeps sequential scans
    from re-probing the cache per element.
    """

    __slots__ = ("_count", "_loader", "_memo")

    def __init__(
        self,
        term: str,
        count: int,
        segment_size: int,
        max_tf: int,
        seg_mins: array,
        seg_maxes: array,
        seg_max_tfs: array,
        loader,
    ):
        super().__init__(term, segment_size=segment_size)
        self._count = count
        self._loader = loader
        self._memo = None
        self._skip_starts = array("q", range(0, count, segment_size))
        if not (
            len(seg_mins)
            == len(seg_maxes)
            == len(seg_max_tfs)
            == len(self._skip_starts)
        ):
            raise ValueError(
                f"skip metadata for {term!r} does not match "
                f"{len(self._skip_starts)} segments"
            )
        self._seg_mins = seg_mins
        self._seg_maxes = seg_maxes
        self._seg_max_tfs = seg_max_tfs
        self._max_tf = max_tf
        self.doc_ids = LazyColumn(self, 0)
        self.tfs = LazyColumn(self, 1)
        self._frozen = True

    def _block(self, block: int) -> Tuple[array, array]:
        memo = self._memo
        if memo is not None and memo[0] == block:
            return memo[1]
        columns = self._loader(block)
        self._memo = (block, columns)
        return columns

    @property
    def materialized(self) -> bool:
        """True once the columns have been decoded into plain arrays."""
        return not isinstance(self.doc_ids, LazyColumn)

    def materialize(self) -> "PostingList":
        """Decode every block into plain ``array('q')`` columns.

        After this the list no longer touches its loader (and thus the
        backing file); mutation paths call it implicitly.
        """
        if not self.materialized:
            ids = array("q")
            tfs = array("q")
            for block in range(len(self._skip_starts)):
                block_ids, block_tfs = self._block(block)
                ids.extend(block_ids)
                tfs.extend(block_tfs)
            self.doc_ids = ids
            self.tfs = tfs
            self._loader = None
            self._memo = None
        return self

    def extend(self, pairs: Iterable[Tuple[int, int]]) -> "PostingList":
        # ``_count`` goes stale here, but nothing reads it once the
        # LazyColumn views have been replaced by real arrays.
        self.materialize()
        return super().extend(pairs)


EMPTY_POSTING_LIST = PostingList.from_pairs("", ())
