"""Posting lists with skip pointers (Section 3.2.1).

An inverted-list entry is a ``<docid, tf>`` pair; lists are ordered by
docid so two lists can be merge-joined.  Lists are partitioned into
segments of ``M0`` entries and a skip pointer is kept per segment,
exactly the structure the paper's cost model is written against:

    cost(L_i ∩ L_j) = M0 · (N_i^o + N_j^o)

where ``N^o`` counts segments whose docid ranges overlap the other list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

DEFAULT_SEGMENT_SIZE = 64


@dataclass
class CostCounter:
    """Accumulates the observable work of list operations.

    ``entries_scanned``
        posting entries actually visited by merges and aggregations.
    ``segments_skipped``
        whole segments jumped over via skip pointers.
    ``model_cost``
        the paper's analytic cost ``M0 · (N_i^o + N_j^o)`` summed over all
        intersections charged to this counter (aggregations charge their
        scan length).  Benches report this next to wall-clock time.
    """

    entries_scanned: int = 0
    segments_skipped: int = 0
    model_cost: int = 0

    def merge(self, other: "CostCounter") -> None:
        """Fold another counter's totals into this one."""
        self.entries_scanned += other.entries_scanned
        self.segments_skipped += other.segments_skipped
        self.model_cost += other.model_cost

    def reset(self) -> None:
        """Zero all totals."""
        self.entries_scanned = 0
        self.segments_skipped = 0
        self.model_cost = 0


class PostingList:
    """An immutable-after-freeze inverted list with per-segment skips.

    Built incrementally by the indexer via :meth:`append` (docids must
    arrive in strictly increasing order), then :meth:`freeze` computes the
    skip table.  Reads before ``freeze`` are not supported.
    """

    __slots__ = ("term", "doc_ids", "tfs", "segment_size", "_skips", "_frozen")

    def __init__(self, term: str, segment_size: int = DEFAULT_SEGMENT_SIZE):
        if segment_size < 2:
            raise ValueError(f"segment_size must be >= 2, got {segment_size}")
        self.term = term
        self.doc_ids: List[int] = []
        self.tfs: List[int] = []
        self.segment_size = segment_size
        self._skips: List[Tuple[int, int]] = []  # (start index, max docid)
        self._frozen = False

    # -- construction --------------------------------------------------

    def append(self, doc_id: int, tf: int) -> None:
        """Append one posting; docids must be strictly increasing."""
        if self._frozen:
            raise RuntimeError(f"posting list for {self.term!r} is frozen")
        if self.doc_ids and doc_id <= self.doc_ids[-1]:
            raise ValueError(
                f"docids must be strictly increasing: {doc_id} after {self.doc_ids[-1]}"
            )
        if tf <= 0:
            raise ValueError(f"tf must be positive, got {tf}")
        self.doc_ids.append(doc_id)
        self.tfs.append(tf)

    def freeze(self) -> "PostingList":
        """Finalise the list and build the skip table; returns self."""
        if not self._frozen:
            self._skips = [
                (start, self.doc_ids[min(start + self.segment_size, len(self.doc_ids)) - 1])
                for start in range(0, len(self.doc_ids), self.segment_size)
            ]
            self._frozen = True
        return self

    @classmethod
    def from_pairs(
        cls,
        term: str,
        pairs: Iterable[Tuple[int, int]],
        segment_size: int = DEFAULT_SEGMENT_SIZE,
    ) -> "PostingList":
        """Build and freeze a list from ``(docid, tf)`` pairs (sorted)."""
        plist = cls(term, segment_size=segment_size)
        for doc_id, tf in pairs:
            plist.append(doc_id, tf)
        return plist.freeze()

    def extend(self, pairs: Iterable[Tuple[int, int]]) -> "PostingList":
        """Append postings to a frozen list and rebuild the skip table.

        Because internal docids are assigned in insertion order, new
        documents always append at the tail, so incremental index updates
        never need to rewrite existing entries — only the skip table is
        recomputed (O(#segments)).  Returns self.
        """
        self._frozen = False
        try:
            for doc_id, tf in pairs:
                self.append(doc_id, tf)
        finally:
            # Leave the list frozen and internally consistent even if a
            # bad pair aborted the append loop part-way.
            self._frozen = False
            self.freeze()
        return self

    # -- reads ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.doc_ids)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self.doc_ids, self.tfs))

    def __repr__(self) -> str:
        return f"PostingList(term={self.term!r}, len={len(self)})"

    @property
    def num_segments(self) -> int:
        """Number of skip segments (``ceil(len / M0)``)."""
        return len(self._skips)

    def segment_bounds(self) -> Sequence[Tuple[int, int]]:
        """Return ``(start index, max docid)`` per segment (frozen lists)."""
        self._require_frozen()
        return tuple(self._skips)

    def contains(self, doc_id: int) -> bool:
        """Binary-search membership test (no cost accounting)."""
        self._require_frozen()
        lo, hi = 0, len(self.doc_ids)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.doc_ids[mid] < doc_id:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(self.doc_ids) and self.doc_ids[lo] == doc_id

    def tf_for(self, doc_id: int) -> Optional[int]:
        """Return the stored tf for ``doc_id`` or ``None`` if absent."""
        self._require_frozen()
        lo, hi = 0, len(self.doc_ids)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.doc_ids[mid] < doc_id:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self.doc_ids) and self.doc_ids[lo] == doc_id:
            return self.tfs[lo]
        return None

    def skip_to(self, position: int, target: int, counter: Optional[CostCounter]) -> int:
        """Advance ``position`` toward the first entry with docid >= target.

        Uses the skip table to jump whole segments whose max docid is below
        ``target``; then scans within the segment.  Returns the new
        position (may be ``len(self)`` when exhausted).
        """
        self._require_frozen()
        n = len(self.doc_ids)
        if position >= n:
            # Exhausted cursor: nothing to advance (also keeps ``seg``
            # inside the skip table when n is a segment-size multiple).
            return position
        seg = position // self.segment_size
        # Jump over fully-passed segments.
        while seg + 1 < len(self._skips) and self._skips[seg][1] < target:
            seg += 1
            if counter is not None:
                counter.segments_skipped += 1
        position = max(position, self._skips[seg][0]) if self._skips else position
        while position < n and self.doc_ids[position] < target:
            position += 1
            if counter is not None:
                counter.entries_scanned += 1
        return position

    def overlapping_segments(self, other: "PostingList") -> int:
        """Count this list's segments whose docid range overlaps ``other``.

        This is the ``N_i^o`` quantity of the paper's intersection cost
        model.  Computed from skip tables only — O(#segments) work.
        """
        self._require_frozen()
        other._require_frozen()
        if not self.doc_ids or not other.doc_ids:
            return 0
        count = 0
        prev_max = -1
        other_min, other_max = other.doc_ids[0], other.doc_ids[-1]
        for start, seg_max in self._skips:
            seg_min = self.doc_ids[start]
            if seg_min <= other_max and seg_max >= other_min:
                count += 1
            prev_max = seg_max
        return count

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise RuntimeError(
                f"posting list for {self.term!r} must be frozen before reads"
            )


EMPTY_POSTING_LIST = PostingList.from_pairs("", ())
