"""Array intersection kernels: galloping probes and dense C-path merges.

The merge operators in :mod:`repro.index.intersection` used to advance
cursors one posting at a time in Python, so interpreter overhead swamped
the asymptotics the paper's cost model describes.  These kernels work
directly over the columnar ``array('q')`` docid buffers of
:class:`~repro.index.postings.PostingList` and pick a strategy by list
shape:

* **galloping** (exponential probe + ``bisect``) when one list is at
  least :data:`GALLOP_RATIO` times longer than the other — the regime
  where the paper's skip pointers pay off (Section 3.2.2), except the
  probe sequence adapts to the data instead of a fixed ``M0`` stride;
* **dense merge** when the lists are comparably sized — a C-speed sorted
  set intersection, since no sublinear strategy exists once most
  segments overlap.

Cost accounting is aggregate, not per-element, so observing work does not
re-introduce the per-element Python loop the kernels exist to remove:
galloping charges its probe count as ``entries_scanned`` and whole
segments leapt over as ``segments_skipped``; the dense path charges one
scanned entry per posting on each side, the work a streaming merge would
do.  The analytic ``M0 · (N_i^o + N_j^o)`` model cost is charged by the
callers in :mod:`repro.index.intersection`, unchanged.

All kernels are pure functions over sorted integer sequences; they never
require the inputs to be ``array`` instances (any random-access sorted
sequence works), which keeps them reusable for materialised docid lists.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

try:  # numpy is optional: the dense kernel falls back to set operations
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _dense_set tests
    _np = None

from .postings import CostCounter

# One list must be this many times longer than the other before galloping
# beats the dense C-path merge (measured crossovers on CPython 3.11).
# The numpy dense kernel is so much faster than the set-based one that
# pure-Python galloping only wins on far more extreme asymmetry.
GALLOP_RATIO = 8
NUMPY_GALLOP_RATIO = 256


def gallop_search(
    ids: Sequence[int], target: int, position: int
) -> Tuple[int, int]:
    """First index >= ``target`` in sorted ``ids``, probing from ``position``.

    Exponential (galloping) probe: double the step until the window
    brackets the target, then binary-search inside the window.  Returns
    ``(index, probes)`` where ``probes`` counts comparisons made — the
    observable work charged as scanned entries.
    """
    n = len(ids)
    lo = position
    probes = 1
    if lo >= n or ids[lo] >= target:
        return lo, probes
    step = 1
    while lo + step < n and ids[lo + step] < target:
        lo += step
        step <<= 1
        probes += 1
    hi = min(lo + step, n)
    index = bisect_left(ids, target, lo + 1, hi)
    probes += max(1, (hi - lo - 1).bit_length())
    return index, probes


def gallop_intersect(
    short_ids: Sequence[int],
    long_ids: Sequence[int],
    segment_size: int,
    counter: Optional[CostCounter] = None,
) -> List[int]:
    """Intersect by galloping through ``long_ids`` for each short docid.

    ``segment_size`` is the long list's ``M0``; leaps are converted into
    skipped whole segments for the counter so the observable accounting
    stays comparable with the skip-pointer merge it replaces.
    """
    result: List[int] = []
    append = result.append
    j = 0
    n_long = len(long_ids)
    probes_total = 0
    for doc_id in short_ids:
        if j >= n_long:
            break
        j, probes = gallop_search(long_ids, doc_id, j)
        probes_total += probes
        if j < n_long and long_ids[j] == doc_id:
            append(doc_id)
            j += 1
    if counter is not None:
        counter.entries_scanned += len(short_ids) + probes_total
        # Every long-list entry never probed was leapt over; charge the
        # whole segments among them as skipped.
        counter.segments_skipped += max(0, (n_long - probes_total)) // segment_size
    return result


def dense_intersect(
    a_ids: Sequence[int],
    b_ids: Sequence[int],
    counter: Optional[CostCounter] = None,
) -> List[int]:
    """C-path merge for comparably-sized lists.

    When both columns are real ``array`` buffers and numpy is available,
    ``np.intersect1d`` runs over zero-copy ``int64`` views of the posting
    columns (docids are strictly increasing, so ``assume_unique`` holds);
    otherwise a sorted set intersection.  Either way the work happens in
    C and the charge is one scanned entry per posting on each side —
    exactly what a streaming two-pointer merge over both lists would
    touch.
    """
    if counter is not None:
        counter.entries_scanned += len(a_ids) + len(b_ids)
    if (
        _np is not None
        and isinstance(a_ids, array)
        and isinstance(b_ids, array)
    ):
        return _np.intersect1d(
            _np.asarray(a_ids), _np.asarray(b_ids), assume_unique=True
        ).tolist()
    if len(a_ids) > len(b_ids):
        a_ids, b_ids = b_ids, a_ids
    return sorted(set(a_ids).intersection(b_ids))


def adaptive_intersect(
    a_ids: Sequence[int],
    b_ids: Sequence[int],
    segment_a: int,
    segment_b: int,
    counter: Optional[CostCounter] = None,
) -> List[int]:
    """Shape-dispatched intersection of two sorted docid columns.

    Galloping (driving the shorter list) when the length ratio exceeds
    the dense kernel's measured crossover — :data:`NUMPY_GALLOP_RATIO`
    when the numpy buffer path applies, :data:`GALLOP_RATIO` for the
    set-based fallback — and the dense C-path merge otherwise.  Disjoint
    docid ranges short-circuit to an empty result for free — the skip
    columns already told the cost model the overlap is zero.
    """
    na, nb = len(a_ids), len(b_ids)
    if not na or not nb:
        return []
    if a_ids[-1] < b_ids[0] or b_ids[-1] < a_ids[0]:
        return []
    ratio = (
        NUMPY_GALLOP_RATIO
        if _np is not None
        and isinstance(a_ids, array)
        and isinstance(b_ids, array)
        else GALLOP_RATIO
    )
    if na * ratio <= nb:
        return gallop_intersect(a_ids, b_ids, segment_b, counter)
    if nb * ratio <= na:
        return gallop_intersect(b_ids, a_ids, segment_a, counter)
    return dense_intersect(a_ids, b_ids, counter)


def intersect_ids_with_tfs(
    ids: Sequence[int],
    doc_ids: Sequence[int],
    tfs: Sequence[int],
    segment_size: int,
    counter: Optional[CostCounter] = None,
    want_tc: bool = False,
) -> Tuple[List[int], int]:
    """Intersect a materialised docid list with a posting list's columns.

    Returns ``(matched_ids, tc_total)`` where ``tc_total`` sums the tf of
    matched documents (0 unless ``want_tc``).  This is the
    ``L_w ∩ context`` operator of Figure 3 with the SUM piggybacked; the
    match set is computed by the adaptive kernel, then tfs are fetched by
    binary search per match (matches are few relative to either input in
    the regimes that matter).
    """
    matched = adaptive_intersect(ids, doc_ids, segment_size, segment_size, counter)
    tc_total = 0
    if want_tc and matched:
        pos = 0
        for doc_id in matched:
            pos = bisect_left(doc_ids, doc_id, pos)
            tc_total += tfs[pos]
            pos += 1
    return matched, tc_total
