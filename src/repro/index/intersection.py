"""Inverted-list intersection operators (Section 3).

Implements the merge join with skip pointers that the paper's cost model
describes, plus the multi-way conjunction used by query plans.  Every
operator threads an optional :class:`CostCounter` so callers can observe
both real work (entries scanned, segments skipped) and the analytic cost
``M0 · (N_i^o + N_j^o)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .postings import CostCounter, PostingList


def model_intersection_cost(a: PostingList, b: PostingList) -> int:
    """The paper's analytic intersection cost ``M0 · (N_a^o + N_b^o)``.

    ``M0`` is the segment size (both lists are built with the same ``M0``
    in this codebase; if they differ we charge each side its own segment
    size, which degenerates to the same formula when equal).
    """
    return (
        a.segment_size * a.overlapping_segments(b)
        + b.segment_size * b.overlapping_segments(a)
    )


def intersect(
    a: PostingList,
    b: PostingList,
    counter: Optional[CostCounter] = None,
    use_skips: bool = True,
) -> List[int]:
    """Return sorted docids present in both lists.

    With ``use_skips`` the merge consults skip tables to leap over
    segments that cannot contain the other list's current docid — the
    optimisation whose payoff the paper analyses in Section 3.2.2 (large
    when one list is orders of magnitude shorter).  With
    ``use_skips=False`` it is a plain two-pointer merge, kept for the
    skip-pointer ablation bench.
    """
    if counter is not None:
        counter.model_cost += model_intersection_cost(a, b)
    result: List[int] = []
    i = j = 0
    na, nb = len(a.doc_ids), len(b.doc_ids)
    a_ids, b_ids = a.doc_ids, b.doc_ids
    while i < na and j < nb:
        da, db = a_ids[i], b_ids[j]
        if da == db:
            result.append(da)
            i += 1
            j += 1
            if counter is not None:
                counter.entries_scanned += 2
        elif da < db:
            if use_skips:
                i = a.skip_to(i, db, counter)
            else:
                i += 1
                if counter is not None:
                    counter.entries_scanned += 1
        else:
            if use_skips:
                j = b.skip_to(j, da, counter)
            else:
                j += 1
                if counter is not None:
                    counter.entries_scanned += 1
    return result


def intersect_ids(
    ids: Sequence[int],
    plist: PostingList,
    counter: Optional[CostCounter] = None,
) -> List[int]:
    """Intersect an already-materialised sorted docid list with a posting list.

    Used for the upper operators of the Figure 3 plan, where the context
    ``L_m1 ∩ L_m2`` has been materialised and is further intersected with
    each keyword list.  Walks ``ids`` and skips through ``plist``.
    """
    result: List[int] = []
    pos = 0
    n = len(plist.doc_ids)
    for doc_id in ids:
        pos = plist.skip_to(pos, doc_id, counter)
        if pos >= n:
            break
        if plist.doc_ids[pos] == doc_id:
            result.append(doc_id)
        if counter is not None:
            counter.entries_scanned += 1
    if counter is not None:
        # Charge the materialised side like a segment-less list: every id
        # examined is an entry touched; the plist side was charged by
        # skip_to.  Model cost approximates M0 * overlapping segments of
        # plist plus the ids scan.
        counter.model_cost += len(ids) + min(len(ids), n)
    return result


def intersect_many(
    lists: Sequence[PostingList],
    counter: Optional[CostCounter] = None,
    use_skips: bool = True,
) -> List[int]:
    """Conjunctive intersection of any number of posting lists.

    Starts from the most selective (shortest) list — the standard
    optimisation the paper notes conventional evaluation enjoys — and
    folds the rest in ascending length order.
    """
    if not lists:
        return []
    ordered = sorted(lists, key=len)
    if len(ordered) == 1:
        if counter is not None:
            counter.entries_scanned += len(ordered[0])
        return list(ordered[0].doc_ids)
    result = intersect(ordered[0], ordered[1], counter, use_skips=use_skips)
    for plist in ordered[2:]:
        if not result:
            break
        result = intersect_ids(result, plist, counter)
    return result


def union_many(lists: Sequence[PostingList]) -> List[int]:
    """Sorted union of posting lists' docids (used by workload tooling)."""
    seen: set = set()
    for plist in lists:
        seen.update(plist.doc_ids)
    return sorted(seen)
