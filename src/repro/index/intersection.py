"""Inverted-list intersection operators (Section 3).

Implements the conjunctions the paper's cost model describes, plus the
multi-way operator used by query plans.  Every operator threads an
optional :class:`CostCounter` so callers can observe both real work
(entries scanned, segments skipped) and the analytic cost
``M0 · (N_i^o + N_j^o)``.

Three pairwise kernels coexist:

* :func:`intersect` (``use_skips=True``) — the default hot path; an
  adaptive array kernel (galloping ``bisect`` probes for asymmetric
  lists, a C-speed dense merge otherwise) from
  :mod:`repro.index.kernels`;
* :func:`intersect_skip_merge` — the skip-pointer merge join the paper
  analyses, advancing cursors one segment/entry at a time; kept as the
  reference implementation and the "before" arm of the kernel
  microbenchmark;
* :func:`intersect` (``use_skips=False``) — the plain two-pointer merge,
  kept for the skip-pointer ablation bench.

All three return identical results on identical inputs (property-tested)
and charge the same analytic model cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .kernels import adaptive_intersect
from .postings import CostCounter, PostingList


def model_intersection_cost(a: PostingList, b: PostingList) -> int:
    """The paper's analytic intersection cost ``M0 · (N_a^o + N_b^o)``.

    The paper writes the formula with a single global segment size
    ``M0``.  When the two lists are built with different segment sizes,
    each side's scan work is bounded by *its own* segment granularity:
    a merge visits at most ``M0_a`` entries in each of ``a``'s
    overlapping segments and at most ``M0_b`` entries in each of ``b``'s,
    so the cost generalises to

        M0_a · N_a^o  +  M0_b · N_b^o

    which degenerates to the paper's formula when ``M0_a == M0_b``.
    Each list is always charged at its own segment size — never the
    other list's (tested in ``tests/test_intersection.py::TestModelCost``).
    """
    return (
        a.segment_size * a.overlapping_segments(b)
        + b.segment_size * b.overlapping_segments(a)
    )


def intersect(
    a: PostingList,
    b: PostingList,
    counter: Optional[CostCounter] = None,
    use_skips: bool = True,
) -> List[int]:
    """Return sorted docids present in both lists.

    With ``use_skips`` the adaptive array kernel runs: galloping
    (exponential-probe ``bisect``) through the longer list when one side
    is much shorter — the optimisation whose payoff the paper analyses in
    Section 3.2.2 — and a dense C-path merge when the lists are
    comparable.  With ``use_skips=False`` it is a plain two-pointer
    merge, kept for the skip-pointer ablation bench.  Both charge the
    analytic model cost identically.
    """
    if counter is not None:
        counter.model_cost += model_intersection_cost(a, b)
    if use_skips:
        return adaptive_intersect(
            a.doc_ids, b.doc_ids, a.segment_size, b.segment_size, counter
        )
    result: List[int] = []
    i = j = 0
    na, nb = len(a.doc_ids), len(b.doc_ids)
    a_ids, b_ids = a.doc_ids, b.doc_ids
    while i < na and j < nb:
        da, db = a_ids[i], b_ids[j]
        if da == db:
            result.append(da)
            i += 1
            j += 1
            if counter is not None:
                counter.entries_scanned += 2
        elif da < db:
            i += 1
            if counter is not None:
                counter.entries_scanned += 1
        else:
            j += 1
            if counter is not None:
                counter.entries_scanned += 1
    return result


def intersect_skip_merge(
    a: PostingList,
    b: PostingList,
    counter: Optional[CostCounter] = None,
) -> List[int]:
    """The skip-pointer merge join of Section 3.2.1 (reference kernel).

    Advances two cursors, leaping whole segments via the skip table when
    one side falls behind.  This was the default evaluation path before
    the array kernels; it remains the analytically-faithful reference the
    property tests compare against and the baseline the kernel
    microbenchmark times.
    """
    if counter is not None:
        counter.model_cost += model_intersection_cost(a, b)
    result: List[int] = []
    i = j = 0
    na, nb = len(a.doc_ids), len(b.doc_ids)
    a_ids, b_ids = a.doc_ids, b.doc_ids
    while i < na and j < nb:
        da, db = a_ids[i], b_ids[j]
        if da == db:
            result.append(da)
            i += 1
            j += 1
            if counter is not None:
                counter.entries_scanned += 2
        elif da < db:
            i = a.skip_to(i, db, counter)
        else:
            j = b.skip_to(j, da, counter)
    return result


def intersect_ids(
    ids: Sequence[int],
    plist: PostingList,
    counter: Optional[CostCounter] = None,
) -> List[int]:
    """Intersect an already-materialised sorted docid list with a posting list.

    Used for the upper operators of the Figure 3 plan, where the context
    ``L_m1 ∩ L_m2`` has been materialised and is further intersected with
    each keyword list.  Runs the adaptive array kernel over the
    materialised column and the list's docid column.
    """
    result = adaptive_intersect(
        ids, plist.doc_ids, plist.segment_size, plist.segment_size, None
    )
    if counter is not None:
        # Charge the materialised side like a segment-less list: every id
        # examined is an entry touched; model cost approximates M0 *
        # overlapping segments of plist plus the ids scan.
        counter.entries_scanned += len(ids)
        counter.model_cost += len(ids) + min(len(ids), len(plist.doc_ids))
    return result


def intersect_many(
    lists: Sequence[PostingList],
    counter: Optional[CostCounter] = None,
    use_skips: bool = True,
) -> List[int]:
    """Conjunctive intersection of any number of posting lists.

    Starts from the most selective (shortest) list — the standard
    optimisation the paper notes conventional evaluation enjoys — and
    folds the rest in ascending length order.
    """
    if not lists:
        return []
    ordered = sorted(lists, key=len)
    if len(ordered) == 1:
        if counter is not None:
            counter.entries_scanned += len(ordered[0])
        return list(ordered[0].doc_ids)
    result = intersect(ordered[0], ordered[1], counter, use_skips=use_skips)
    for plist in ordered[2:]:
        if not result:
            break
        result = intersect_ids(result, plist, counter)
    return result


def union_many(lists: Sequence[PostingList]) -> List[int]:
    """Sorted union of posting lists' docids (used by workload tooling)."""
    seen: set = set()
    for plist in lists:
        seen.update(plist.doc_ids)
    return sorted(seen)
