"""Text analysis: tokenisation, stopping, and light stemming.

The paper uses Lucene's standard analysis chain; this module provides the
equivalent pieces.  The design is a small pipeline object
(:class:`Analyzer`) so tests can swap components (e.g. disable stemming)
without monkey-patching.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Sequence

# English function words.  A compact list is enough: the synthetic corpus
# injects these with realistic frequencies and the analyzer must drop them,
# mirroring Lucene's StandardAnalyzer defaults.
DEFAULT_STOPWORDS = frozenset(
    """a an and are as at be but by for if in into is it no not of on or such
    that the their then there these they this to was will with from have has
    we our were been which who what when where how""".split()
)

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[-'][a-z0-9]+)*")


def tokenize(text: str) -> List[str]:
    """Lowercase ``text`` and split it into word tokens.

    Hyphenated and apostrophised words are kept whole ("parvovirus-b19",
    "crohn's") since biomedical text is full of them.
    """
    return _TOKEN_RE.findall(text.lower())


class Stemmer:
    """A light suffix stemmer (an "s-stemmer" with a few extra rules).

    Deliberately weaker than full Porter: it only conflates plural and
    simple derivational variants, which keeps the synthetic vocabulary's
    collision behaviour predictable in tests.
    """

    _RULES: Sequence = (
        ("sses", "ss"),
        ("ies", "y"),
        ("ations", "ation"),
        ("s", ""),
    )

    def stem(self, token: str) -> str:
        """Return the stem of ``token``.

        Tokens of length <= 3 are returned unchanged: stripping suffixes
        from very short tokens ("is", "as") creates more collisions than it
        resolves.
        """
        if len(token) <= 3:
            return token
        for suffix, replacement in self._RULES:
            if token.endswith(suffix) and len(token) - len(suffix) >= 3:
                return token[: len(token) - len(suffix)] + replacement
        return token


_DEFAULT_STEMMER = object()  # sentinel: "use the standard stemmer"


class Analyzer:
    """Tokenise → stop → stem pipeline, applied to every indexed field.

    Parameters
    ----------
    stopwords:
        Set of tokens to drop.  Pass an empty set to keep everything.
    stemmer:
        A :class:`Stemmer`, or ``None`` to disable stemming entirely
        (defaults to the standard light stemmer).
    min_token_length:
        Tokens shorter than this are discarded after stemming.
    """

    def __init__(
        self,
        stopwords: Iterable[str] = DEFAULT_STOPWORDS,
        stemmer=_DEFAULT_STEMMER,
        min_token_length: int = 1,
    ):
        self.stopwords = frozenset(stopwords)
        self.stemmer = Stemmer() if stemmer is _DEFAULT_STEMMER else stemmer
        self.min_token_length = min_token_length

    def analyze(self, text: str) -> List[str]:
        """Return the analysed token stream for ``text``."""
        out: List[str] = []
        for token in tokenize(text):
            if token in self.stopwords:
                continue
            if self.stemmer is not None:
                token = self.stemmer.stem(token)
            if len(token) >= self.min_token_length:
                out.append(token)
        return out

    def analyze_query_term(self, term: str) -> str | None:
        """Analyse a single query keyword; ``None`` if it is stopped out.

        Query terms must pass through the same pipeline as indexed text so
        that query-time vocabulary matches index-time vocabulary.
        """
        tokens = self.analyze(term)
        if not tokens:
            return None
        if len(tokens) > 1:
            # A "keyword" that analyses to multiple tokens (e.g. contains
            # whitespace) is a caller bug; be explicit rather than guessing.
            raise ValueError(
                f"query term {term!r} analysed to multiple tokens {tokens}; "
                "pass single keywords"
            )
        return tokens[0]


class KeywordAnalyzer(Analyzer):
    """Pass-through analyzer for controlled-vocabulary fields.

    MeSH-style predicate fields hold opaque identifiers ("D012.345",
    "Neoplasms"); they must not be stemmed or stopped.  Matches Lucene's
    ``KeywordAnalyzer`` semantics except that the field may contain many
    whitespace-separated identifiers.
    """

    def __init__(self):
        super().__init__(stopwords=(), stemmer=None)

    def analyze(self, text: str) -> List[str]:
        return text.split()

    def analyze_query_term(self, term: str) -> str | None:
        term = term.strip()
        return term or None
