"""Posting-list compression: d-gap + variable-byte encoding.

Classic inverted-index compression (Manning et al., ch. 5 — the paper's
reference [24]): docids are stored as gaps from their predecessors and
each integer is variable-byte encoded (7 data bits per byte, high bit
terminates).  Tfs are encoded alongside.  The storage benchmark uses
these sizes for a realistic index-vs-views comparison; the codec also
backs a compact persistence path.

Pure functions over ``PostingList`` — the in-memory structures stay
uncompressed for query speed (the paper's setting is an in-memory
index), so compression is an at-rest representation.
"""

from __future__ import annotations

from array import array
from typing import Tuple

from ..errors import IndexError_
from .postings import DEFAULT_SEGMENT_SIZE, PostingList


def encode_varint(value: int) -> bytes:
    """Variable-byte encode one non-negative integer.

    Little-endian 7-bit groups; the final byte has its high bit set —
    the textbook "v-byte" scheme.
    """
    if value < 0:
        raise IndexError_(f"cannot varint-encode negative value {value}")
    out = bytearray()
    while True:
        if value < 128:
            out.append(value | 0x80)
            return bytes(out)
        out.append(value & 0x7F)
        value >>= 7


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one varint from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    value = 0
    shift = 0
    position = offset
    while True:
        try:
            byte = data[position]
        except IndexError:
            raise IndexError_(
                f"truncated varint at offset {offset}"
            ) from None
        position += 1
        if byte & 0x80:
            return value | ((byte & 0x7F) << shift), position
        value |= byte << shift
        shift += 7


def encode_postings(plist: PostingList) -> bytes:
    """Serialise a posting list: count, cached max_tf, then (d-gap, tf)
    varint pairs.

    ``max_tf`` travels with the list so a decoded list keeps the cached
    value instead of silently recomputing it from a rescan; the
    per-block maxima need not be stored — they are a pure function of
    the tf column and the segment size, so the decode-side freeze
    rebuilds them identically.
    """
    out = bytearray(encode_varint(len(plist)))
    out += encode_varint(plist.max_tf)
    previous = 0
    for doc_id, tf in plist:
        out += encode_varint(doc_id - previous)
        out += encode_varint(tf)
        previous = doc_id
    return bytes(out)


def decode_postings(
    data: bytes,
    term: str = "",
    segment_size: int = DEFAULT_SEGMENT_SIZE,
) -> PostingList:
    """Inverse of :func:`encode_postings`.

    Decodes straight into the columnar ``array('q')`` layout via
    :meth:`PostingList.from_arrays` — no intermediate list of pairs.
    """
    count, offset = decode_varint(data, 0)
    max_tf, offset = decode_varint(data, offset)
    doc_ids = array("q")
    tfs = array("q")
    doc_id = 0
    for _ in range(count):
        gap, offset = decode_varint(data, offset)
        tf, offset = decode_varint(data, offset)
        doc_id += gap
        doc_ids.append(doc_id)
        tfs.append(tf)
    if offset != len(data):
        raise IndexError_(
            f"trailing bytes after postings: {len(data) - offset}"
        )
    return PostingList.from_arrays(
        term, doc_ids, tfs, segment_size=segment_size, max_tf=max_tf
    )


def compressed_size(plist: PostingList) -> int:
    """Encoded size in bytes without materialising the encoding twice."""
    return len(encode_postings(plist))


def index_compressed_bytes(index) -> int:
    """Total compressed posting storage of an index (content + predicates).

    The realistic counterpart of the storage benchmark's raw
    ``8 bytes × postings`` accounting.
    """
    total = 0
    for term in index.vocabulary:
        total += compressed_size(index.postings(term))
    for term in index.predicate_vocabulary:
        total += compressed_size(index.predicate_postings(term))
    return total
