"""Posting-list compression: d-gap + variable-byte encoding.

Classic inverted-index compression (Manning et al., ch. 5 — the paper's
reference [24]): docids are stored as gaps from their predecessors and
each integer is variable-byte encoded (7 data bits per byte, high bit
terminates).  Tfs are encoded alongside.  The storage benchmark uses
these sizes for a realistic index-vs-views comparison; the codec also
backs a compact persistence path.

Pure functions over ``PostingList`` — the in-memory structures stay
uncompressed for query speed (the paper's setting is an in-memory
index), so compression is an at-rest representation.
"""

from __future__ import annotations

from array import array
from typing import Tuple

from ..errors import IndexError_, StorageError
from .postings import DEFAULT_SEGMENT_SIZE, PostingList

_MAX_INT64 = (1 << 63) - 1
#: Sentinel bit width marking a block encoded as varint pairs instead of
#: fixed-width bit packing (the "exception" path of PFor-style codecs).
VARINT_BLOCK = 255


def encode_varint(value: int) -> bytes:
    """Variable-byte encode one non-negative integer.

    Little-endian 7-bit groups; the final byte has its high bit set —
    the textbook "v-byte" scheme.
    """
    if value < 0:
        raise IndexError_(f"cannot varint-encode negative value {value}")
    out = bytearray()
    while True:
        if value < 128:
            out.append(value | 0x80)
            return bytes(out)
        out.append(value & 0x7F)
        value >>= 7


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one varint from ``data`` at ``offset``.

    Returns ``(value, next_offset)``.
    """
    value = 0
    shift = 0
    position = offset
    while True:
        try:
            byte = data[position]
        except IndexError:
            raise IndexError_(
                f"truncated varint at offset {offset}"
            ) from None
        position += 1
        if byte & 0x80:
            return value | ((byte & 0x7F) << shift), position
        value |= byte << shift
        shift += 7


def encode_postings(plist: PostingList) -> bytes:
    """Serialise a posting list: count, cached max_tf, then (d-gap, tf)
    varint pairs.

    ``max_tf`` travels with the list so a decoded list keeps the cached
    value instead of silently recomputing it from a rescan; the
    per-block maxima need not be stored — they are a pure function of
    the tf column and the segment size, so the decode-side freeze
    rebuilds them identically.
    """
    out = bytearray(encode_varint(len(plist)))
    out += encode_varint(plist.max_tf)
    previous = 0
    for doc_id, tf in plist:
        out += encode_varint(doc_id - previous)
        out += encode_varint(tf)
        previous = doc_id
    return bytes(out)


def decode_postings(
    data: bytes,
    term: str = "",
    segment_size: int = DEFAULT_SEGMENT_SIZE,
) -> PostingList:
    """Inverse of :func:`encode_postings`.

    Decodes straight into the columnar ``array('q')`` layout via
    :meth:`PostingList.from_arrays` — no intermediate list of pairs.
    """
    count, offset = decode_varint(data, 0)
    max_tf, offset = decode_varint(data, offset)
    doc_ids = array("q")
    tfs = array("q")
    doc_id = 0
    for _ in range(count):
        gap, offset = decode_varint(data, offset)
        tf, offset = decode_varint(data, offset)
        doc_id += gap
        doc_ids.append(doc_id)
        tfs.append(tf)
    if offset != len(data):
        raise IndexError_(
            f"trailing bytes after postings: {len(data) - offset}"
        )
    return PostingList.from_arrays(
        term, doc_ids, tfs, segment_size=segment_size, max_tf=max_tf
    )


def _pack_bits(values, width: int) -> bytes:
    """LSB-first fixed-width bit packing of non-negative ints < 2**width."""
    if width == 0:
        return b""
    big = 0
    shift = 0
    for value in values:
        big |= value << shift
        shift += width
    return big.to_bytes((shift + 7) // 8, "little")


def _unpack_bits(payload: bytes, width: int, count: int) -> list:
    big = int.from_bytes(payload, "little")
    mask = (1 << width) - 1
    return [(big >> (i * width)) & mask for i in range(count)]


def _varint_cost(value: int) -> int:
    return max(1, (value.bit_length() + 6) // 7)


def encode_block(
    doc_ids, tfs, start: int, count: int, prev_doc_id: int
) -> bytes:
    """Encode one posting block as a self-framing byte string.

    Docids are stored as ``gap - 1`` where ``gap`` is the delta from the
    previous docid (``prev_doc_id`` is the last docid of the preceding
    block, or ``-1`` for the first block), and tfs as ``tf - 1`` — both
    are guaranteed non-negative, so dense runs (gap 1) and uniform
    ``tf == 1`` columns pack to zero payload bits.  Frame layout::

        [gap_width u8][tf_width u8][packed gaps][packed tfs]

    with widths 0–63, or ``[VARINT_BLOCK u8]`` followed by
    ``(gap-1, tf-1)`` varint pairs when that is strictly smaller
    (the fallback for blocks with a single enormous outlier gap).
    """
    gaps = []
    previous = prev_doc_id
    for i in range(start, start + count):
        doc_id = doc_ids[i]
        if doc_id <= previous:
            raise IndexError_(
                f"docids not strictly increasing at position {i}"
            )
        gaps.append(doc_id - previous - 1)
        previous = doc_id
    tf_deltas = []
    for i in range(start, start + count):
        tf = tfs[i]
        if tf < 1:
            raise IndexError_(f"tf must be >= 1, got {tf} at position {i}")
        tf_deltas.append(tf - 1)
    gap_width = max((g.bit_length() for g in gaps), default=0)
    tf_width = max((t.bit_length() for t in tf_deltas), default=0)
    packed_size = 2 + (count * gap_width + 7) // 8 + (count * tf_width + 7) // 8
    varint_size = 1 + sum(_varint_cost(g) for g in gaps) + sum(
        _varint_cost(t) for t in tf_deltas
    )
    if varint_size < packed_size:
        out = bytearray((VARINT_BLOCK,))
        for gap, tf_delta in zip(gaps, tf_deltas):
            out += encode_varint(gap)
            out += encode_varint(tf_delta)
        return bytes(out)
    return (
        bytes((gap_width, tf_width))
        + _pack_bits(gaps, gap_width)
        + _pack_bits(tf_deltas, tf_width)
    )


def decode_block(
    data: bytes, count: int, prev_doc_id: int
) -> Tuple[array, array]:
    """Inverse of :func:`encode_block` over one exact frame.

    Strict: every malformed input — short payload, trailing bytes,
    out-of-range widths, values overflowing int64 — raises
    :class:`~repro.errors.StorageError`; random bytes never crash the
    decoder with anything else.
    """
    if count < 0:
        raise StorageError(f"negative posting count {count}")
    if not data:
        raise StorageError("empty block frame")
    doc_ids = array("q")
    tfs = array("q")
    marker = data[0]
    try:
        if marker == VARINT_BLOCK:
            offset = 1
            doc_id = prev_doc_id
            for _ in range(count):
                try:
                    gap, offset = decode_varint(data, offset)
                    tf_delta, offset = decode_varint(data, offset)
                except IndexError_ as exc:
                    raise StorageError(f"truncated varint block: {exc}")
                doc_id += gap + 1
                doc_ids.append(doc_id)
                tfs.append(tf_delta + 1)
            if offset != len(data):
                raise StorageError(
                    f"trailing bytes after varint block: {len(data) - offset}"
                )
            return doc_ids, tfs
        if len(data) < 2:
            raise StorageError("block frame shorter than its 2-byte header")
        gap_width, tf_width = data[0], data[1]
        if gap_width > 63 or tf_width > 63:
            raise StorageError(
                f"invalid block bit widths ({gap_width}, {tf_width})"
            )
        gap_bytes = (count * gap_width + 7) // 8
        tf_bytes = (count * tf_width + 7) // 8
        if len(data) != 2 + gap_bytes + tf_bytes:
            raise StorageError(
                f"block frame is {len(data)} bytes, expected "
                f"{2 + gap_bytes + tf_bytes} for {count} postings at "
                f"widths ({gap_width}, {tf_width})"
            )
        gaps = _unpack_bits(data[2 : 2 + gap_bytes], gap_width, count)
        tf_deltas = _unpack_bits(data[2 + gap_bytes :], tf_width, count)
        doc_id = prev_doc_id
        for gap, tf_delta in zip(gaps, tf_deltas):
            doc_id += gap + 1
            doc_ids.append(doc_id)
            tfs.append(tf_delta + 1)
        return doc_ids, tfs
    except OverflowError:
        raise StorageError(
            "decoded posting value overflows int64"
        ) from None


def compressed_size(plist: PostingList) -> int:
    """Encoded size in bytes without materialising the encoding twice."""
    return len(encode_postings(plist))


def index_compressed_bytes(index) -> int:
    """Total compressed posting storage of an index (content + predicates).

    The realistic counterpart of the storage benchmark's raw
    ``8 bytes × postings`` accounting.
    """
    total = 0
    for term in index.vocabulary:
        total += compressed_size(index.postings(term))
    for term in index.predicate_vocabulary:
        total += compressed_size(index.predicate_postings(term))
    return total
