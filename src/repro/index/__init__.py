"""Text-search substrate: analysis, postings, inverted index, boolean search.

This package is the reproduction's stand-in for Apache Lucene (Section 6
uses Lucene as "the standard text search system").  It implements the
structures the paper's cost model is written against: ``<docid, tf>``
posting lists ordered by docid, segmented with skip pointers, merge-join
intersection, and full-scan aggregation.
"""

from .analysis import Analyzer, KeywordAnalyzer, Stemmer, tokenize, DEFAULT_STOPWORDS
from .documents import Document, DocumentStore, StoredDocument
from .postings import CostCounter, PostingList, DEFAULT_SEGMENT_SIZE
from .intersection import (
    intersect,
    intersect_ids,
    intersect_many,
    model_intersection_cost,
    union_many,
)
from .aggregation import aggregate_count, aggregate_generic, aggregate_sum
from .inverted_index import (
    DEFAULT_PREDICATE_FIELD,
    DEFAULT_SEARCHABLE_FIELDS,
    InvertedIndex,
    build_index,
)
from .searcher import BooleanSearcher
from .sharded import (
    HashPartitioner,
    IndexShard,
    RangePartitioner,
    ShardPartitioner,
    ShardedInvertedIndex,
    make_partitioner,
    shard_documents,
)
from .compression import (
    compressed_size,
    decode_postings,
    decode_varint,
    encode_postings,
    encode_varint,
    index_compressed_bytes,
)

__all__ = [
    "compressed_size",
    "decode_postings",
    "decode_varint",
    "encode_postings",
    "encode_varint",
    "index_compressed_bytes",
    "Analyzer",
    "KeywordAnalyzer",
    "Stemmer",
    "tokenize",
    "DEFAULT_STOPWORDS",
    "Document",
    "DocumentStore",
    "StoredDocument",
    "CostCounter",
    "PostingList",
    "DEFAULT_SEGMENT_SIZE",
    "intersect",
    "intersect_ids",
    "intersect_many",
    "model_intersection_cost",
    "union_many",
    "aggregate_count",
    "aggregate_generic",
    "aggregate_sum",
    "InvertedIndex",
    "build_index",
    "DEFAULT_PREDICATE_FIELD",
    "DEFAULT_SEARCHABLE_FIELDS",
    "BooleanSearcher",
    "ShardPartitioner",
    "HashPartitioner",
    "RangePartitioner",
    "make_partitioner",
    "IndexShard",
    "ShardedInvertedIndex",
    "shard_documents",
]
