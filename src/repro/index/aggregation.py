"""Aggregation operators over materialised docid lists (``∩_γ`` in Figure 3).

The straightforward plan computes collection-specific statistics by
aggregating the documents of the materialised context: ``γ_count`` for
``|D_P|``, ``γ_sum(len)`` for ``len(D_P)``.  An aggregation requires a
full scan of its input, so its cost model is the input length
(Section 3.2.1) — charged to the :class:`CostCounter` here.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .postings import CostCounter


def aggregate_count(ids: Sequence[int], counter: Optional[CostCounter] = None) -> int:
    """``γ_count``: the context cardinality ``|D_P|``.

    The count is knowable in O(1) from the materialised list, but the cost
    model charges a scan because a streaming implementation (which never
    materialises the whole list) must see every element; we charge the
    model cost while taking the O(1) answer.
    """
    if counter is not None:
        counter.model_cost += len(ids)
    return len(ids)


def aggregate_sum(
    ids: Sequence[int],
    values: Sequence[int],
    counter: Optional[CostCounter] = None,
) -> int:
    """``γ_sum``: sum ``values[docid]`` over the context (e.g. ``len(D_P)``).

    ``values`` is a dense per-docid parameter column (document lengths from
    the :class:`~repro.index.documents.DocumentStore`).
    """
    if counter is not None:
        counter.entries_scanned += len(ids)
        counter.model_cost += len(ids)
    return sum(values[doc_id] for doc_id in ids)


def aggregate_generic(
    ids: Sequence[int],
    value_fn: Callable[[int], float],
    counter: Optional[CostCounter] = None,
) -> float:
    """Sum an arbitrary per-document parameter over the context.

    Escape hatch for statistics outside Table 1 (e.g. extension ranking
    models); same full-scan cost as :func:`aggregate_sum`.
    """
    if counter is not None:
        counter.entries_scanned += len(ids)
        counter.model_cost += len(ids)
    return sum(value_fn(doc_id) for doc_id in ids)
