"""Document model and in-memory document store.

A document is a tuple of named *fields*, each a bag of words (Section 2.1).
For the PubMed reproduction the conventional fields are ``title`` and
``abstract`` and the predicate field is ``mesh`` (context predicates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

from ..errors import IndexError_


@dataclass(frozen=True)
class Document:
    """An input document: an external id plus raw field text.

    ``fields`` maps field name → raw text.  Analysis happens at indexing
    time, not here, so a ``Document`` is cheap to construct and compare.
    """

    doc_id: str
    fields: Mapping[str, str]

    def text(self, field_name: str) -> str:
        """Return the raw text of ``field_name`` (empty string if absent)."""
        return self.fields.get(field_name, "")

    def combined_text(self, field_names: Iterable[str]) -> str:
        """Concatenate several fields' raw text (used for searchable body)."""
        return " ".join(self.fields.get(f, "") for f in field_names)


@dataclass
class StoredDocument:
    """A document as held by the store: internal docid + analysed fields.

    ``length`` is the searchable-token count ``len(d)`` of Table 1 and
    ``unique_terms`` is ``utc(d)``; both are document-specific statistics
    consumed directly by ranking functions.
    """

    internal_id: int
    external_id: str
    field_tokens: Dict[str, List[str]]
    length: int
    unique_terms: int

    def term_frequency(self, term: str, field_names: Iterable[str]) -> int:
        """Count occurrences of ``term`` across ``field_names`` (``tf(w,d)``)."""
        count = 0
        for name in field_names:
            for token in self.field_tokens.get(name, ()):
                if token == term:
                    count += 1
        return count


class DocumentStore:
    """Assigns dense internal docids and retains analysed documents.

    Internal ids are assigned in insertion order starting from 0, which is
    what keeps posting lists naturally sorted as documents stream in.
    """

    def __init__(self):
        self._docs: List[StoredDocument] = []
        self._by_external: Dict[str, int] = {}
        self._lengths_cache: Optional[List[int]] = None

    def __len__(self) -> int:
        return len(self._docs)

    def __iter__(self) -> Iterator[StoredDocument]:
        return iter(self._docs)

    def add(
        self,
        document: Document,
        field_tokens: Dict[str, List[str]],
        searchable_fields: Iterable[str],
    ) -> StoredDocument:
        """Register an analysed document and return its stored form.

        Raises :class:`IndexError_` on duplicate external ids — silently
        overwriting a citation would corrupt collection statistics.
        """
        if document.doc_id in self._by_external:
            raise IndexError_(f"duplicate document id: {document.doc_id!r}")
        searchable = [
            token
            for name in searchable_fields
            for token in field_tokens.get(name, ())
        ]
        stored = StoredDocument(
            internal_id=len(self._docs),
            external_id=document.doc_id,
            field_tokens=field_tokens,
            length=len(searchable),
            unique_terms=len(set(searchable)),
        )
        self._docs.append(stored)
        self._by_external[document.doc_id] = stored.internal_id
        self._lengths_cache = None
        return stored

    def add_restored(self, stored: StoredDocument) -> StoredDocument:
        """Re-register a previously-stored document, trusting its stats.

        The persistence fast path: ``length``/``unique_terms`` were
        computed at save time, so restoring skips the searchable-token
        flatten entirely.  The document must carry the next dense
        internal id (restore order = original insertion order).
        """
        if stored.internal_id != len(self._docs):
            raise IndexError_(
                f"restored document {stored.external_id!r} carries internal "
                f"id {stored.internal_id}, expected {len(self._docs)}"
            )
        if stored.external_id in self._by_external:
            raise IndexError_(f"duplicate document id: {stored.external_id!r}")
        self._docs.append(stored)
        self._by_external[stored.external_id] = stored.internal_id
        self._lengths_cache = None
        return stored

    def get(self, internal_id: int) -> StoredDocument:
        """Look up a document by internal id."""
        try:
            return self._docs[internal_id]
        except IndexError:
            raise IndexError_(f"unknown internal docid: {internal_id}") from None

    def by_external_id(self, external_id: str) -> Optional[StoredDocument]:
        """Look up a document by its external id, or ``None``."""
        internal = self._by_external.get(external_id)
        return None if internal is None else self._docs[internal]

    def lengths(self) -> List[int]:
        """Return ``len(d)`` for every document, indexed by internal id.

        The wide sparse table (Section 4.1) uses this as its ``len(d)``
        parameter column, and the straightforward plan reads it on every
        context aggregation — so the dense column is memoised (callers
        treat it as read-only) and rebuilt only after new documents land.
        """
        if self._lengths_cache is None:
            self._lengths_cache = [doc.length for doc in self._docs]
        return self._lengths_cache
