"""Horizontal partitioning of the document collection (ROADMAP: sharding).

A sharded index splits the collection into ``N`` disjoint sub-collections,
each carrying its own full :class:`~repro.index.inverted_index.InvertedIndex`.
The split is *exactness-preserving* for everything the paper's ranking
needs: every collection-specific statistic of Table 1 except ``utc`` is a
sum over documents (``|D_P|``, ``len(D_P)``, ``df(w, D_P)``, ``tc(w, D_P)``),
so per-shard partial aggregates merge into the global value by integer
addition — no approximation, no rounding.

Each shard records a ``global_ids`` column mapping its local docids to the
document's *arrival position* in the unsharded collection.  That position
is exactly the internal docid a single-shard index would have assigned,
which is what lets the sharded engine reproduce single-shard rankings
bit-identically, including docid tie-breaks.
"""

from __future__ import annotations

import zlib
from array import array
from typing import Iterable, List, Optional, Sequence

from ..errors import IndexError_
from .analysis import Analyzer
from .documents import Document
from .inverted_index import (
    DEFAULT_PREDICATE_FIELD,
    DEFAULT_SEARCHABLE_FIELDS,
    InvertedIndex,
)
from .postings import DEFAULT_SEGMENT_SIZE


class ShardPartitioner:
    """Assigns every document to exactly one of ``num_shards`` shards."""

    name = "base"

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise IndexError_(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards

    def assign(self, external_id: str, position: int, total: int) -> int:
        """Shard id for a document given its id and arrival position."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class HashPartitioner(ShardPartitioner):
    """Stable content hash of the external id — balanced and order-free.

    Uses ``crc32`` rather than ``hash()`` so the assignment is identical
    across interpreter runs (``PYTHONHASHSEED`` never leaks into shard
    layout) and across machines, which persistence relies on.
    """

    name = "hash"

    def assign(self, external_id: str, position: int, total: int) -> int:
        return zlib.crc32(external_id.encode("utf-8")) % self.num_shards


class RangePartitioner(ShardPartitioner):
    """Contiguous arrival-order ranges — locality-preserving splits."""

    name = "range"

    def assign(self, external_id: str, position: int, total: int) -> int:
        if total <= 0:
            return 0
        return min(self.num_shards - 1, position * self.num_shards // total)


_PARTITIONERS = {cls.name: cls for cls in (HashPartitioner, RangePartitioner)}


def make_partitioner(name: str, num_shards: int) -> ShardPartitioner:
    """Instantiate a partitioner by its persisted name."""
    cls = _PARTITIONERS.get(name)
    if cls is None:
        raise IndexError_(
            f"unknown partitioner {name!r} (have {sorted(_PARTITIONERS)})"
        )
    return cls(num_shards)


class IndexShard:
    """One shard: a standalone committed index plus the local→global map."""

    __slots__ = ("shard_id", "index", "global_ids")

    def __init__(self, shard_id: int, index: InvertedIndex, global_ids: array):
        if len(global_ids) != index.num_docs:
            raise IndexError_(
                f"shard {shard_id}: {len(global_ids)} global ids for "
                f"{index.num_docs} documents"
            )
        self.shard_id = shard_id
        self.index = index
        self.global_ids = global_ids

    def __repr__(self) -> str:
        return f"IndexShard(id={self.shard_id}, docs={self.index.num_docs})"


class ShardedInvertedIndex:
    """``N`` disjoint sub-indexes presenting summed global statistics.

    Construction goes through :meth:`build` (from raw documents, one
    analysis pass) or :meth:`from_index` (redistributing an existing
    committed index without re-analysis).  Global reads are exact merges
    of per-shard values: sums for cardinality/length/df/tc, max for
    ``max_tf``.
    """

    def __init__(self, shards: Sequence[IndexShard], partitioner: ShardPartitioner):
        if not shards:
            raise IndexError_("a sharded index needs at least one shard")
        if len(shards) != partitioner.num_shards:
            raise IndexError_(
                f"{len(shards)} shards for a {partitioner.num_shards}-way partitioner"
            )
        self.shards: List[IndexShard] = list(shards)
        self.partitioner = partitioner
        first = self.shards[0].index
        self.searchable_fields = first.searchable_fields
        self.predicate_field = first.predicate_field
        self.segment_size = first.segment_size
        # One mutation clock for the whole partitioned collection: every
        # shard index is rebound to it, so an append on any shard ticks
        # the same clock every cache reads (no per-shard counters to sum).
        # Imported here, not at module level: repro.index initialises
        # before repro.core during package import.
        from ..core.backend import VersionClock

        self._clock = VersionClock()
        for shard in self.shards:
            shard.index._clock = self._clock

    def close(self) -> None:
        """Release every shard index's resources (idempotent).

        Shards loaded from binary block files hold an mmap each; plain
        in-memory shards close as a no-op.
        """
        for shard in self.shards:
            shard.index.close()

    def __enter__(self) -> "ShardedInvertedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        documents: Iterable[Document],
        num_shards: int,
        partitioner: str = "hash",
        analyzer: Optional[Analyzer] = None,
        searchable_fields: Sequence[str] = DEFAULT_SEARCHABLE_FIELDS,
        predicate_field: str = DEFAULT_PREDICATE_FIELD,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
    ) -> "ShardedInvertedIndex":
        """Partition raw documents and build one committed index per shard.

        Documents are materialised once up front (the range partitioner
        needs the collection size); each document is analysed exactly once,
        inside the shard it lands in.
        """
        documents = list(documents)
        part = make_partitioner(partitioner, num_shards)
        indexes = [
            InvertedIndex(
                analyzer=analyzer,
                searchable_fields=searchable_fields,
                predicate_field=predicate_field,
                segment_size=segment_size,
            )
            for _ in range(num_shards)
        ]
        global_ids = [array("q") for _ in range(num_shards)]
        total = len(documents)
        for position, document in enumerate(documents):
            shard_id = part.assign(document.doc_id, position, total)
            indexes[shard_id].add(document)
            global_ids[shard_id].append(position)
        shards = [
            IndexShard(shard_id, index.commit(), ids)
            for shard_id, (index, ids) in enumerate(zip(indexes, global_ids))
        ]
        return cls(shards, part)

    @classmethod
    def from_index(
        cls,
        index: InvertedIndex,
        num_shards: int,
        partitioner: str = "hash",
    ) -> "ShardedInvertedIndex":
        """Redistribute a committed single index into ``num_shards`` shards.

        Stored documents carry their analysed token streams, so no
        analyser runs; the original internal docid (arrival position)
        becomes the shard's global id, preserving tie-break order.
        """
        if not index.committed:
            raise IndexError_("from_index requires a committed index")
        part = make_partitioner(partitioner, num_shards)
        indexes = [
            InvertedIndex(
                analyzer=index.analyzer,
                predicate_analyzer=index.predicate_analyzer,
                searchable_fields=index.searchable_fields,
                predicate_field=index.predicate_field,
                segment_size=index.segment_size,
            )
            for _ in range(num_shards)
        ]
        global_ids = [array("q") for _ in range(num_shards)]
        total = index.num_docs
        for stored in index.store:
            shard_id = part.assign(stored.external_id, stored.internal_id, total)
            indexes[shard_id].add_preanalyzed(
                stored.external_id, stored.field_tokens
            )
            global_ids[shard_id].append(stored.internal_id)
        shards = [
            IndexShard(shard_id, shard_index.commit(), ids)
            for shard_id, (shard_index, ids) in enumerate(zip(indexes, global_ids))
        ]
        return cls(shards, part)

    # -- global reads (exact merges) ------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def committed(self) -> bool:
        return all(shard.index.committed for shard in self.shards)

    @property
    def epoch(self) -> int:
        """The shared :class:`~repro.core.backend.VersionClock` value:
        any shard's append ticks the one clock all shards share."""
        return self._clock.version

    def __len__(self) -> int:
        return self.num_docs

    @property
    def num_docs(self) -> int:
        """Global ``|D|``: sum of shard cardinalities."""
        return sum(shard.index.num_docs for shard in self.shards)

    @property
    def total_length(self) -> int:
        """Global ``len(D)``: sum of shard token totals."""
        return sum(shard.index.total_length for shard in self.shards)

    def document_frequency(self, term: str) -> int:
        """Global ``df(w, D)``: shards are disjoint, so df sums exactly."""
        return sum(shard.index.document_frequency(term) for shard in self.shards)

    def predicate_frequency(self, term: str) -> int:
        """Global ``|L_m|``: sum of shard predicate-list lengths."""
        return sum(shard.index.predicate_frequency(term) for shard in self.shards)

    def term_count(self, term: str) -> int:
        """Global ``tc(w, D)``: summed tf over every shard's posting list."""
        return sum(
            sum(tf for _, tf in shard.index.postings(term))
            for shard in self.shards
        )

    def max_tf(self, term: str) -> int:
        """Global largest tf of ``term`` — the max of per-shard maxima.

        Feeds the shared per-term score upper bounds the sharded engine
        hands every shard's MaxScore scorer, so all shards (and the
        single-shard reference) prune against identical bounds.
        """
        return max(shard.index.postings(term).max_tf for shard in self.shards)

    def average_document_length(self) -> float:
        """Global ``avgdl = len(D) / |D|``."""
        docs = self.num_docs
        if not docs:
            return 0.0
        return self.total_length / docs

    def prefetch(
        self, terms: Iterable[str], predicates: Iterable[str] = ()
    ) -> None:
        """Pin posting columns on every shard (batch warm-up helper)."""
        terms = list(terms)
        predicates = list(predicates)
        for shard in self.shards:
            shard.index.prefetch(terms, predicates)

    def __repr__(self) -> str:
        sizes = [shard.index.num_docs for shard in self.shards]
        return (
            f"ShardedInvertedIndex(shards={self.num_shards}, "
            f"partitioner={self.partitioner.name!r}, docs={sizes})"
        )


def shard_documents(
    documents: Sequence[Document], partitioner: ShardPartitioner
) -> List[List[Document]]:
    """Split raw documents by shard (inspection/test helper)."""
    buckets: List[List[Document]] = [[] for _ in range(partitioner.num_shards)]
    total = len(documents)
    for position, document in enumerate(documents):
        buckets[partitioner.assign(document.doc_id, position, total)].append(
            document
        )
    return buckets
