"""Deterministic random-number helpers.

All stochastic behaviour in the library flows through explicitly seeded
:class:`random.Random` instances so that corpora, workloads, and sampled
estimates are reproducible run-to-run.  Library code never touches the
module-level :mod:`random` state or the wall clock.
"""

from __future__ import annotations

import random
from typing import Sequence, Union

SeedLike = Union[int, random.Random, None]


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be an ``int`` (fresh generator), an existing ``Random``
    (returned as-is, allowing streams to be shared deliberately), or ``None``
    (fresh generator with a fixed default seed — determinism by default).
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        return random.Random(0x5EED)
    return random.Random(seed)


def derive_rng(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child generator from ``rng`` tagged by ``label``.

    Used to decorrelate the sub-streams of a generator (e.g. the ontology
    stream vs. the document-content stream) so that changing how many draws
    one consumer makes does not perturb the others.
    """
    return random.Random(f"{rng.getrandbits(64)}:{label}")


def zipf_weights(n: int, skew: float = 1.1) -> Sequence[float]:
    """Return unnormalised Zipfian weights ``1/rank**skew`` for ``n`` ranks.

    Term-frequency distributions in text are famously Zipfian; the corpus
    generator samples vocabulary draws from these weights.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if skew < 0:
        raise ValueError(f"skew must be non-negative, got {skew}")
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


def weighted_sample(
    rng: random.Random,
    population: Sequence,
    weights: Sequence[float],
    k: int,
) -> list:
    """Sample ``k`` distinct items from ``population`` with given weights.

    ``random.choices`` samples with replacement; this helper rejects
    duplicates, which is what annotation sampling (a document's set of
    ontology terms) needs.  Falls back to taking the whole population when
    ``k >= len(population)``.
    """
    if k >= len(population):
        return list(population)
    chosen: list = []
    seen: set = set()
    # Rejection sampling is fine here: k is small relative to the population
    # in every call site (annotations per document vs. vocabulary size).
    while len(chosen) < k:
        (item,) = rng.choices(population, weights=weights, k=1)
        if id(item) not in seen:
            seen.add(id(item))
            chosen.append(item)
    return chosen
