"""Balanced vertex separators via s–t min-cut sweeps — Algorithm 2.

A *vertex separator* is a vertex set whose removal disconnects the graph
(Definition 4).  Algorithm 2 finds a balanced one by sweeping a split
point ``i`` over a vertex ordering: source ``s`` is attached to
``v_1..v_i``, sink ``t`` to ``v_{i+1}..v_n``, and the minimum-capacity
s–t *vertex* cut is extracted via max-flow on the node-split graph
(each vertex becomes ``v_in → v_out`` with capacity 1; original edges get
infinite capacity).  Among the ``n-1`` candidate separators the one
optimising Formula 5,

    min  |S0| / (min(|S1|, |S2|) + |S0|),

is returned.  Max-flow is an in-repo Dinic's implementation — no external
graph library on the library path (networkx serves only as a test
oracle).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence

from ..errors import SelectionError
from .kag import KeywordAssociationGraph

_INF = float("inf")


@dataclass(frozen=True)
class Separator:
    """A decomposition ``V = S1 ∪ S2 ∪ S0`` with no S1–S2 edges."""

    s1: FrozenSet[str]
    s2: FrozenSet[str]
    s0: FrozenSet[str]

    @property
    def objective(self) -> float:
        """Formula 5's value (lower is better; 0 for a free split).

        A separator with an empty side does not split anything, so it is
        scored infinitely bad regardless of the literal formula value.
        """
        if not self.s1 or not self.s2:
            return _INF
        smaller = min(len(self.s1), len(self.s2))
        denom = smaller + len(self.s0)
        if denom == 0:
            return _INF
        return len(self.s0) / denom


class _Dinic:
    """Dinic's max-flow over an integer-indexed residual graph."""

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self.graph: List[List[int]] = [[] for _ in range(num_nodes)]
        self.to: List[int] = []
        self.cap: List[float] = []

    def add_edge(self, u: int, v: int, capacity: float) -> None:
        self.graph[u].append(len(self.to))
        self.to.append(v)
        self.cap.append(capacity)
        self.graph[v].append(len(self.to))
        self.to.append(u)
        self.cap.append(0.0)

    def max_flow(self, source: int, sink: int) -> float:
        flow = 0.0
        while True:
            level = self._bfs_levels(source, sink)
            if level[sink] < 0:
                return flow
            iters = [0] * self.num_nodes
            while True:
                pushed = self._dfs(source, sink, _INF, level, iters)
                if pushed <= 0:
                    break
                flow += pushed

    def _bfs_levels(self, source: int, sink: int) -> List[int]:
        level = [-1] * self.num_nodes
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for edge_id in self.graph[u]:
                v = self.to[edge_id]
                if self.cap[edge_id] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level

    def _dfs(
        self,
        u: int,
        sink: int,
        pushed: float,
        level: List[int],
        iters: List[int],
    ) -> float:
        if u == sink:
            return pushed
        while iters[u] < len(self.graph[u]):
            edge_id = self.graph[u][iters[u]]
            v = self.to[edge_id]
            if self.cap[edge_id] > 0 and level[v] == level[u] + 1:
                result = self._dfs(
                    v, sink, min(pushed, self.cap[edge_id]), level, iters
                )
                if result > 0:
                    self.cap[edge_id] -= result
                    self.cap[edge_id ^ 1] += result
                    return result
            iters[u] += 1
        return 0.0

    def reachable_from(self, source: int) -> List[bool]:
        """Residual reachability after max-flow (the min-cut frontier)."""
        seen = [False] * self.num_nodes
        seen[source] = True
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for edge_id in self.graph[u]:
                v = self.to[edge_id]
                if self.cap[edge_id] > 0 and not seen[v]:
                    seen[v] = True
                    queue.append(v)
        return seen


def _min_vertex_cut(
    graph: KeywordAssociationGraph,
    source_seeds: Sequence[str],
    sink_seeds: Sequence[str],
) -> Separator:
    """Minimum vertex separator between two seed sets (node-split max-flow)."""
    vertices = graph.vertices
    idx = {v: i for i, v in enumerate(vertices)}
    n = len(vertices)
    dinic = _Dinic(2 * n + 2)
    s_node, t_node = 2 * n, 2 * n + 1

    for v, i in idx.items():
        dinic.add_edge(2 * i, 2 * i + 1, 1.0)  # v_in -> v_out, cap 1
    for edge in graph.edges():
        u, v = idx[edge.a], idx[edge.b]
        dinic.add_edge(2 * u + 1, 2 * v, _INF)
        dinic.add_edge(2 * v + 1, 2 * u, _INF)
    for v in source_seeds:
        dinic.add_edge(s_node, 2 * idx[v], _INF)
    for v in sink_seeds:
        dinic.add_edge(2 * idx[v] + 1, t_node, _INF)

    dinic.max_flow(s_node, t_node)
    reachable = dinic.reachable_from(s_node)

    s0, s1, s2 = set(), set(), set()
    for v, i in idx.items():
        in_reach = reachable[2 * i]
        out_reach = reachable[2 * i + 1]
        if in_reach and not out_reach:
            s0.add(v)
        elif out_reach:
            s1.add(v)
        else:
            s2.add(v)
    return Separator(frozenset(s1), frozenset(s2), frozenset(s0))


def find_balanced_separator(
    graph: KeywordAssociationGraph,
    max_trials: Optional[int] = None,
) -> Separator:
    """Algorithm 2: sweep split points, return the Formula 5 optimum.

    ``max_trials`` caps the number of sweep positions (evenly spaced over
    the ordering) — the paper runs all ``n``, which is quadratic in
    max-flow calls; the cap trades separator quality for selection speed
    and is reported by the hybrid selector when used.

    Raises :class:`SelectionError` for graphs with fewer than 3 vertices
    (nothing to separate) or when no candidate yields two non-empty
    sides (the graph is a clique — the caller should hand it to the
    data-mining selector instead, Section 5.3).
    """
    vertices = graph.vertices
    n = len(vertices)
    if n < 3:
        raise SelectionError(f"cannot separate a graph with {n} vertices")

    positions = list(range(1, n))
    if max_trials is not None and max_trials < len(positions):
        step = len(positions) / max_trials
        positions = [positions[int(k * step)] for k in range(max_trials)]

    best: Optional[Separator] = None
    for i in positions:
        candidate = _min_vertex_cut(graph, vertices[:i], vertices[i:])
        if not candidate.s1 or not candidate.s2:
            continue
        if best is None or candidate.objective < best.objective:
            best = candidate
    if best is None:
        raise SelectionError(
            "no balanced separator exists (graph is a clique or near-clique)"
        )
    return best
