"""Incremental workload-driven reselection (the continuous half of §5/§7).

The offline selectors (:mod:`~repro.selection.hybrid`,
:mod:`~repro.selection.workload_driven`) answer "which views, given this
collection and this workload" once.  :class:`IncrementalReselector`
re-answers it continuously: fed the live recorder's rolling workload, it
runs the greedy workload-driven selector under a storage budget and
materialises the chosen views — **reusing** any view from the previous
catalog whose definition ``(keyword_set, df_terms, tc_terms)`` is
unchanged instead of rebuilding it.

Reuse is sound because views are exact and incrementally maintained:
a reused view object has had every ingest/delete applied to it
(:func:`~repro.views.maintenance.maintain_catalog`), so it equals what a
fresh materialisation over the current collection would produce.  Only
genuinely new keyword sets pay a wide-table scan.

The output is a *new* :class:`~repro.views.catalog.ViewCatalog` object —
never a mutation of the old one — so in-flight queries holding the old
catalog keep a consistent view, and the planner's per-catalog coverage
cache starts empty (stale-plan invalidation by construction).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import SelectionError
from ..views.catalog import ViewCatalog
from ..views.estimator import ViewSizeEstimator
from ..views.view import materialize_view
from ..views.wide_table import WideSparseTable
from .workload_driven import (
    WorkloadEntry,
    evaluate_coverage,
    workload_driven_selection,
)

__all__ = ["IncrementalReselector", "ReselectionReport"]


@dataclass
class ReselectionReport:
    """What one reselection pass chose, reused, and rebuilt."""

    trigger: str = "manual"
    num_views: int = 0
    reused_views: int = 0
    built_views: int = 0
    storage_used: int = 0
    storage_budget: int = 0
    workload_coverage: float = 0.0
    distinct_contexts: int = 0
    num_docs: int = 0
    elapsed_seconds: float = 0.0
    keyword_sets: List[FrozenSet[str]] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-safe summary for ``info``/``healthz``/metrics payloads."""
        return {
            "trigger": self.trigger,
            "num_views": self.num_views,
            "reused_views": self.reused_views,
            "built_views": self.built_views,
            "storage_used": self.storage_used,
            "storage_budget": self.storage_budget,
            "workload_coverage": round(self.workload_coverage, 4),
            "distinct_contexts": self.distinct_contexts,
            "num_docs": self.num_docs,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }


class IncrementalReselector:
    """Re-runs workload-driven selection, reusing unchanged views.

    Parameters
    ----------
    storage_budget:
        The space constraint, in view tuples (the ``ViewSize`` unit).
    t_c:
        The frequent-term threshold for ``df`` parameter columns
        (Section 6.2's storage rule); ``None`` derives ``max(2, 1% of
        the collection)`` at each reselection, tracking collection
        growth.
    include_tc_columns:
        Also store ``tc`` columns for frequent terms (language-model
        rankings need them; TF-IDF/BM25 do not).
    base_keyword_sets:
        Keyword sets that are always materialised regardless of the
        workload (e.g. a guarantee-based catalog's sets) — the hybrid
        "guarantee floor + workload-driven working set" deployment.
    """

    def __init__(
        self,
        storage_budget: int,
        t_c: Optional[int] = None,
        include_tc_columns: bool = False,
        base_keyword_sets: Iterable[FrozenSet[str]] = (),
    ):
        if storage_budget < 1:
            raise SelectionError(
                f"storage budget must be >= 1, got {storage_budget}"
            )
        self.storage_budget = storage_budget
        self.t_c = t_c
        self.include_tc_columns = include_tc_columns
        self.base_keyword_sets = [frozenset(ks) for ks in base_keyword_sets]

    def effective_t_c(self, index) -> int:
        if self.t_c is not None:
            return self.t_c
        return max(2, index.num_docs // 100)

    def reselect(
        self,
        index,
        workload: Sequence[WorkloadEntry],
        previous_catalog: Optional[ViewCatalog] = None,
        trigger: str = "manual",
    ) -> Tuple[ViewCatalog, ReselectionReport]:
        """One full selection pass over the current collection.

        ``index`` is any committed index-like (a flat
        :class:`~repro.index.inverted_index.InvertedIndex` or a lifecycle
        snapshot).  Returns the new catalog plus the pass report; the
        caller installs the catalog through its engine's swap entry point.
        """
        started = time.perf_counter()
        table = WideSparseTable.from_index(index)
        estimator = ViewSizeEstimator(table, seed=0)

        selection = workload_driven_selection(
            list(workload), estimator, storage_budget=self.storage_budget
        )
        chosen: List[FrozenSet[str]] = list(self.base_keyword_sets)
        for ks in selection.keyword_sets:
            if ks not in chosen:
                chosen.append(ks)

        t_c = self.effective_t_c(index)
        frequent = frozenset(
            w for w in index.vocabulary if index.document_frequency(w) >= t_c
        )
        tc_terms = frequent if self.include_tc_columns else frozenset()

        # Reuse views whose full definition is unchanged: they are exact
        # for the current collection because incremental maintenance has
        # applied every mutation to them.
        previous = {}
        if previous_catalog is not None:
            previous = {view.keyword_set: view for view in previous_catalog}
        views = []
        reused = built = 0
        for ks in chosen:
            existing = previous.get(ks)
            if (
                existing is not None
                and existing.df_terms == frequent
                and existing.tc_terms == tc_terms
            ):
                views.append(existing)
                reused += 1
            else:
                views.append(
                    materialize_view(
                        table, ks, df_terms=frequent, tc_terms=tc_terms
                    )
                )
                built += 1

        catalog = ViewCatalog(views)
        report = ReselectionReport(
            trigger=trigger,
            num_views=len(views),
            reused_views=reused,
            built_views=built,
            storage_used=sum(view.size for view in views),
            storage_budget=self.storage_budget,
            workload_coverage=evaluate_coverage(chosen, list(workload)),
            distinct_contexts=len(workload),
            num_docs=index.num_docs,
            elapsed_seconds=time.perf_counter() - started,
            keyword_sets=chosen,
        )
        return catalog, report
