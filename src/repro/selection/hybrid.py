"""The hybrid view selector (Section 5.3) and the end-to-end pipeline.

The decomposition pass quickly splits the KAG into pieces, most of which
become single views; the residues — dense clique-like pieces too large
for one view — are handed to the data-mining pass (miner + Algorithm 1),
which is affordable there because residues are much smaller than the
original keyword set.

:func:`select_views` is the library's one-call entry point: it builds the
transaction DB, the KAG, runs the chosen strategy, materialises every
selected view (with ``df``/``tc`` columns for frequent content keywords
per Section 6.2's storage rule), and returns a ready
:class:`~repro.views.catalog.ViewCatalog`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from ..errors import SelectionError
from ..index.inverted_index import InvertedIndex
from ..views.catalog import ViewCatalog
from ..views.estimator import ViewSizeEstimator
from ..views.view import materialize_view
from ..views.wide_table import WideSparseTable
from .decomposition import decomposition_select
from .greedy import ViewSizeFn, greedy_view_selection, remove_subsumed
from .kag import KeywordAssociationGraph
from .mining.eclat import eclat
from .mining.itemsets import TransactionDatabase


@dataclass
class SelectionReport:
    """What a selection run did — the Section 6.2 table's raw material."""

    strategy: str
    t_c: int
    t_v: int
    num_views: int = 0
    views_from_decomposition: int = 0
    views_from_mining: int = 0
    dense_residues: int = 0
    separators_computed: int = 0
    supports_computed: int = 0
    mining_work_units: int = 0
    keyword_sets: List[FrozenSet[str]] = field(default_factory=list)


def max_combination_size(t_v: int) -> int:
    """Largest ``|P|`` with ``ViewSize(V_P) ≤ T_V`` guaranteed a priori.

    ``ViewSize ≤ 2^|K|``, so capping mined combinations at
    ``floor(log2 T_V)`` keywords guarantees Algorithm 1's input assumption
    (the paper's "upper bound on the number of keywords").
    """
    if t_v < 2:
        raise SelectionError(f"T_V must be >= 2, got {t_v}")
    return max(1, int(math.log2(t_v)))


def mining_based_selection(
    db: TransactionDatabase,
    view_size: ViewSizeFn,
    t_c: int,
    t_v: int,
    max_size: Optional[int] = None,
    budget: Optional[int] = None,
) -> SelectionReport:
    """Pure bottom-up selection: mine all high-support combinations, cover.

    Uses Eclat (the fastest of the three miners on these densities); the
    Apriori/FP-growth infeasibility comparison lives in the benches, not
    on this API path.
    """
    max_size = max_size if max_size is not None else max_combination_size(t_v)
    mined = eclat(db, min_support=t_c, max_size=max_size, budget=budget)
    combos = mined.maximal_itemsets()
    keyword_sets = greedy_view_selection(combos, view_size, t_v)
    report = SelectionReport(strategy="mining", t_c=t_c, t_v=t_v)
    report.mining_work_units = mined.work_units
    report.views_from_mining = len(keyword_sets)
    report.num_views = len(keyword_sets)
    report.keyword_sets = keyword_sets
    return report


def hybrid_selection(
    db: TransactionDatabase,
    view_size: ViewSizeFn,
    t_c: int,
    t_v: int,
    replicate: str = "support",
    max_size: Optional[int] = None,
    max_trials: Optional[int] = 16,
    kag: Optional[KeywordAssociationGraph] = None,
) -> SelectionReport:
    """Section 5.3: decomposition first, mining on the dense residues.

    ``max_trials`` caps Algorithm 2's sweep positions per separator
    (the paper sweeps all ``n``; 16 evenly-spaced positions select the
    same views at a fraction of the max-flow cost on our graph sizes —
    pass ``None`` for the faithful full sweep).
    """
    max_size = max_size if max_size is not None else max_combination_size(t_v)
    if kag is None:
        kag = KeywordAssociationGraph.from_transactions(db, t_c)
    support_fn = db.support if replicate == "support" else None
    decomposition = decomposition_select(
        kag,
        view_size,
        t_v,
        t_c,
        replicate=replicate,
        support_fn=support_fn,
        max_trials=max_trials,
    )
    report = SelectionReport(strategy="hybrid", t_c=t_c, t_v=t_v)
    report.separators_computed = decomposition.stats.separators_computed
    report.supports_computed = decomposition.stats.supports_computed
    report.dense_residues = len(decomposition.dense_residues)

    keyword_sets: List[FrozenSet[str]] = list(decomposition.covered)
    report.views_from_decomposition = len(keyword_sets)

    for residue in decomposition.dense_residues:
        projected = db.project(residue)
        mined = eclat(projected, min_support=t_c, max_size=max_size)
        report.mining_work_units += mined.work_units
        combos = mined.maximal_itemsets()
        if not combos:
            continue
        residue_views = greedy_view_selection(combos, view_size, t_v)
        report.views_from_mining += len(residue_views)
        keyword_sets.extend(residue_views)

    # Deduplicate and drop keyword sets subsumed by larger selected sets.
    keyword_sets = remove_subsumed(keyword_sets)
    report.keyword_sets = keyword_sets
    report.num_views = len(keyword_sets)
    return report


def decomposition_only_selection(
    db: TransactionDatabase,
    view_size: ViewSizeFn,
    t_c: int,
    t_v: int,
    replicate: str = "always",
    max_trials: Optional[int] = None,
) -> SelectionReport:
    """Pure top-down selection; dense residues become (oversized) views.

    Kept as an ablation arm: shows why the hybrid exists — residues that
    are cliques above ``T_V`` violate the view-size constraint here.
    """
    kag = KeywordAssociationGraph.from_transactions(db, t_c)
    decomposition = decomposition_select(
        kag, view_size, t_v, t_c, replicate=replicate,
        support_fn=db.support, max_trials=max_trials,
    )
    keyword_sets = remove_subsumed(
        list(decomposition.covered) + list(decomposition.dense_residues)
    )
    report = SelectionReport(strategy="decomposition", t_c=t_c, t_v=t_v)
    report.separators_computed = decomposition.stats.separators_computed
    report.supports_computed = decomposition.stats.supports_computed
    report.dense_residues = len(decomposition.dense_residues)
    report.views_from_decomposition = len(keyword_sets)
    report.num_views = len(keyword_sets)
    report.keyword_sets = keyword_sets
    return report


_STRATEGIES = {
    "mining": mining_based_selection,
    "hybrid": hybrid_selection,
}


def select_views(
    index: InvertedIndex,
    t_c: int,
    t_v: int,
    strategy: str = "hybrid",
    include_tc_columns: bool = False,
    estimator: Optional[ViewSizeEstimator] = None,
    **strategy_kwargs,
) -> tuple:
    """End-to-end: select keyword sets and materialise the view catalog.

    Parameters
    ----------
    index:
        A committed :class:`InvertedIndex`.
    t_c:
        Context-size threshold (absolute document count).  Contexts at or
        above it are guaranteed view coverage (Problem 5.1).
    t_v:
        View-size threshold (non-empty tuples per view).
    strategy:
        ``"hybrid"`` (Section 5.3, the paper's implementation) or
        ``"mining"`` (pure Section 5.1).
    include_tc_columns:
        Also materialise ``tc(w, ·)`` columns (needed by the Dirichlet
        language model; the paper's TF-IDF setup needs only ``df``).
    estimator:
        Optional pre-built view-size oracle (reused across selections in
        sweeps).

    Returns ``(catalog, report)``.
    """
    if strategy not in _STRATEGIES:
        raise SelectionError(
            f"unknown strategy {strategy!r}; expected one of {sorted(_STRATEGIES)}"
        )
    table = WideSparseTable.from_index(index)
    db = TransactionDatabase(table.predicate_sets())
    if estimator is None:
        estimator = ViewSizeEstimator(table)

    report = _STRATEGIES[strategy](db, estimator, t_c, t_v, **strategy_kwargs)

    # Section 6.2 storage rule: df columns only for frequent content terms.
    frequent_terms = [
        w for w in index.vocabulary if index.document_frequency(w) >= t_c
    ]
    tc_terms = frequent_terms if include_tc_columns else ()
    catalog = ViewCatalog(
        materialize_view(table, keyword_set, df_terms=frequent_terms, tc_terms=tc_terms)
        for keyword_set in report.keyword_sets
    )
    return catalog, report
