"""Data-mining-based view selection — Algorithm 1 (Section 5.1).

Given keyword combinations with support ≥ ``T_C`` (from a miner), choose
view keyword sets so that every combination is covered by some view of
size ≤ ``T_V``.  Minimising the number of views is NP-hard (Theorem 5.1 —
it embeds set cover), so Algorithm 1 is a greedy heuristic built on two
observations: a view covering ``P2`` also covers every ``P1 ⊂ P2``, and
packing overlapping combinations into one view amortises keyword columns.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, List, Sequence

from ..errors import SelectionError

ViewSizeFn = Callable[[Iterable[str]], int]


def remove_subsumed(
    combinations: Iterable[FrozenSet[str]],
) -> List[FrozenSet[str]]:
    """Line 1 of Algorithm 1: drop ``P_i`` when some ``P_j ⊃ P_i`` exists.

    Deterministic output order: descending size, then lexicographic.
    """
    ordered = sorted(set(combinations), key=lambda p: (-len(p), sorted(p)))
    kept: List[FrozenSet[str]] = []
    for candidate in ordered:
        if not any(candidate < other for other in kept):
            kept.append(candidate)
    return kept


def greedy_view_selection(
    combinations: Iterable[FrozenSet[str]],
    view_size: ViewSizeFn,
    t_v: int,
) -> List[FrozenSet[str]]:
    """Algorithm 1: greedily pack combinations into views of size ≤ ``T_V``.

    Parameters
    ----------
    combinations:
        High-support keyword combinations ``P`` (miner output).  The
        algorithm assumes ``ViewSize(V_P) ≤ T_V`` for each — guaranteed
        upstream by capping the combination size during mining; violations
        raise :class:`SelectionError`.
    view_size:
        The ``ViewSize`` oracle (exact or sampled; see
        :class:`~repro.views.estimator.ViewSizeEstimator`).
    t_v:
        The view-size threshold ``T_V``.

    Returns the selected view keyword sets, each covering one or more of
    the input combinations; their union covers all of them.
    """
    if t_v < 2:
        raise SelectionError(f"T_V must allow at least 2 tuples, got {t_v}")
    pending = remove_subsumed(combinations)
    for combo in pending:
        if view_size(combo) > t_v:
            raise SelectionError(
                f"combination {sorted(combo)} alone exceeds T_V="
                f"{t_v} (ViewSize={view_size(combo)}); cap the combination "
                "size during mining"
            )

    selected: List[FrozenSet[str]] = []
    while pending:
        # Seed the new view with the largest remaining combination.
        current: FrozenSet[str] = pending.pop(0)
        # Grow: repeatedly add the pending combination with maximal
        # keyword overlap whose inclusion keeps the view within T_V.
        while True:
            best_idx = -1
            best_overlap = -1
            for idx, combo in enumerate(pending):
                overlap = len(current & combo)
                if overlap > best_overlap and view_size(current | combo) <= t_v:
                    best_overlap = overlap
                    best_idx = idx
            if best_idx < 0:
                break
            current = current | pending.pop(best_idx)
        selected.append(current)
    return selected


def coverage_gaps(
    combinations: Iterable[FrozenSet[str]],
    views: Sequence[FrozenSet[str]],
) -> List[FrozenSet[str]]:
    """Combinations not covered by any view (empty list == Problem 5.1.2 holds)."""
    return [
        combo
        for combo in combinations
        if not any(combo <= view for view in views)
    ]
