"""Graph-decomposition-based view selection (Section 5.2).

Recursively splits the KAG with balanced vertex separators until every
piece either fits under one view (``ViewSize ≤ T_V``) or is a dense
residue (clique) for the data-mining selector (Section 5.3 hand-off).

The two decomposition schemes of Section 5.2.1 govern S0–S0 edge
replication into ``G2``:

* **scheme 1** (``replicate="always"``): every S0–S0 edge is replicated —
  always correct, never loses a high-support clique, but yields denser
  subgraphs;
* **scheme 2** (``replicate="support"``): an S0–S0 edge ``(m_i, m_j)`` is
  replicated only if some clique containing ``m_i``, ``m_j`` and an S2
  vertex has support ≥ ``T_C``.  Because support is anti-monotone, such a
  clique exists iff some *triangle* ``{m_i, m_j, v}``, ``v ∈ S2`` a
  common neighbour, has support ≥ ``T_C`` — so the check needs only
  3-way supports, the "compute support only when necessary" economy the
  paper claims for the top-down approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import SelectionError
from .greedy import ViewSizeFn
from .kag import KeywordAssociationGraph
from .separator import Separator, find_balanced_separator

SupportFn = Callable[[Iterable[str]], int]


@dataclass
class DecompositionStats:
    """Work accounting for the Section 6.2 efficiency comparison."""

    separators_computed: int = 0
    supports_computed: int = 0
    edges_replicated: int = 0
    edges_dropped: int = 0
    max_depth: int = 0


@dataclass
class DecompositionResult:
    """Output of the decomposition pass.

    ``covered`` are keyword sets small enough for single views;
    ``dense_residues`` are clique-like pieces still over ``T_V`` that the
    hybrid selector forwards to mining + Algorithm 1.
    """

    covered: List[FrozenSet[str]] = field(default_factory=list)
    dense_residues: List[FrozenSet[str]] = field(default_factory=list)
    stats: DecompositionStats = field(default_factory=DecompositionStats)


def apply_separator(
    graph: KeywordAssociationGraph,
    separator: Separator,
    t_c: int,
    replicate: str = "always",
    support_fn: Optional[SupportFn] = None,
    stats: Optional[DecompositionStats] = None,
) -> Tuple[KeywordAssociationGraph, KeywordAssociationGraph]:
    """Split ``graph`` into ``(G1, G2)`` per Definition 4's edge rules."""
    if replicate not in ("always", "support"):
        raise SelectionError(f"unknown replication scheme: {replicate!r}")
    if replicate == "support" and support_fn is None:
        raise SelectionError("scheme 'support' requires a support oracle")

    s1, s2, s0 = separator.s1, separator.s2, separator.s0
    v1 = s1 | s0
    v2 = s2 | s0

    adj1: dict = {v: {} for v in v1}
    adj2: dict = {v: {} for v in v2}

    def _add(adj: dict, u: str, v: str, w: int) -> None:
        adj[u][v] = w
        adj[v][u] = w

    for edge in graph.edges():
        u, v, w = edge.a, edge.b, edge.weight
        u_in_s0, v_in_s0 = u in s0, v in s0
        if u_in_s0 and v_in_s0:
            # S0-S0 edges always stay in G1 (Definition 4); replication
            # into G2 depends on the scheme.
            _add(adj1, u, v, w)
            if _should_replicate(
                graph, u, v, s2, t_c, replicate, support_fn, stats
            ):
                _add(adj2, u, v, w)
                if stats is not None:
                    stats.edges_replicated += 1
            elif stats is not None:
                stats.edges_dropped += 1
        elif u in v1 and v in v1 and not (u in s2 or v in s2):
            _add(adj1, u, v, w)
        elif u in v2 and v in v2 and not (u in s1 or v in s1):
            _add(adj2, u, v, w)
        # S1-S2 edges cannot exist: the separator guarantees it.
    return KeywordAssociationGraph(adj1), KeywordAssociationGraph(adj2)


def _should_replicate(
    graph: KeywordAssociationGraph,
    u: str,
    v: str,
    s2: FrozenSet[str],
    t_c: int,
    replicate: str,
    support_fn: Optional[SupportFn],
    stats: Optional[DecompositionStats],
) -> bool:
    """Decide S0–S0 edge replication into G2."""
    if replicate == "always":
        return True
    # Scheme 2: replicate iff some triangle {u, v, x}, x ∈ S2 a common
    # neighbour, has support ≥ T_C (sound & complete by anti-monotonicity).
    common = set(graph.neighbors(u)) & set(graph.neighbors(v)) & s2
    for x in sorted(common):
        if stats is not None:
            stats.supports_computed += 1
        if support_fn((u, v, x)) >= t_c:
            return True
    return False


def decomposition_select(
    graph: KeywordAssociationGraph,
    view_size: ViewSizeFn,
    t_v: int,
    t_c: int,
    replicate: str = "always",
    support_fn: Optional[SupportFn] = None,
    max_trials: Optional[int] = None,
) -> DecompositionResult:
    """Top-down selection: decompose until coverable or irreducibly dense.

    Pieces whose full vertex set fits a single view (``ViewSize ≤ T_V``)
    are emitted as view keyword sets; cliques (and pieces a separator
    cannot shrink) still above ``T_V`` are emitted as dense residues.
    """
    result = DecompositionResult()
    stack: List[Tuple[KeywordAssociationGraph, int]] = [
        (graph.subgraph(c), 0) for c in graph.connected_components()
    ]
    while stack:
        sub, depth = stack.pop()
        result.stats.max_depth = max(result.stats.max_depth, depth)
        vertices = frozenset(sub.vertices)
        if not vertices:
            continue
        if view_size(vertices) <= t_v:
            result.covered.append(vertices)
            continue
        if len(vertices) < 3 or sub.is_clique():
            result.dense_residues.append(vertices)
            continue
        try:
            separator = find_balanced_separator(sub, max_trials=max_trials)
        except SelectionError:
            result.dense_residues.append(vertices)
            continue
        result.stats.separators_computed += 1
        g1, g2 = apply_separator(
            sub, separator, t_c, replicate, support_fn, result.stats
        )
        if len(g1) >= len(vertices) or len(g2) >= len(vertices):
            # The separator failed to shrink both sides (heavy
            # replication); further recursion would not terminate.
            result.dense_residues.append(vertices)
            continue
        for piece in (g1, g2):
            for component in piece.connected_components():
                stack.append((piece.subgraph(component), depth + 1))
    return result
