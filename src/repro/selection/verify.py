"""Exhaustive verification of the view-selection guarantee (Problem 5.1).

At test scale we can afford ground truth: enumerate *every* predicate
combination whose context size is ≥ ``T_C`` (via Eclat, which is exact)
and check each is covered by a selected view, and that every selected
view's exact size is ≤ ``T_V``.  The property tests and the selection
benches both call this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence

from ..views.estimator import ViewSizeEstimator
from .greedy import coverage_gaps
from .mining.eclat import eclat
from .mining.itemsets import TransactionDatabase


@dataclass
class VerificationResult:
    """Outcome of a selection audit."""

    checked_combinations: int
    uncovered: List[FrozenSet[str]] = field(default_factory=list)
    oversized_views: List[FrozenSet[str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.uncovered and not self.oversized_views


def verify_selection(
    db: TransactionDatabase,
    keyword_sets: Sequence[FrozenSet[str]],
    estimator: ViewSizeEstimator,
    t_c: int,
    t_v: int,
    max_combination_size: Optional[int] = None,
) -> VerificationResult:
    """Audit Problem 5.1's two conditions against exact ground truth.

    ``max_combination_size`` restricts the audit to context specifications
    of at most that many predicates — matching the cap the selection
    itself was run with (coverage beyond the cap is explicitly out of
    scope, per the paper's bounded-|P| assumption).
    """
    mined = eclat(db, min_support=t_c, max_size=max_combination_size)
    combos = list(mined.itemsets)
    uncovered = coverage_gaps(combos, keyword_sets)
    oversized = [
        keyword_set
        for keyword_set in keyword_sets
        if estimator.exact(keyword_set) > t_v
    ]
    return VerificationResult(
        checked_combinations=len(combos),
        uncovered=uncovered,
        oversized_views=oversized,
    )
