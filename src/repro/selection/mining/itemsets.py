"""Transaction database abstraction for association-rule mining (Section 5.1).

"An item is mapped to a keyword, and a transaction is mapped to a
document."  The database wraps the documents' predicate sets and provides
the support primitives all three miners share, plus the common result
type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from ...errors import MiningError

Itemset = FrozenSet[str]


class TransactionDatabase:
    """An immutable multiset of transactions (sets of items)."""

    def __init__(self, transactions: Iterable[Iterable[str]]):
        self._transactions: List[FrozenSet[str]] = [
            frozenset(t) for t in transactions
        ]
        self._item_counts: Dict[str, int] = {}
        for transaction in self._transactions:
            for item in transaction:
                self._item_counts[item] = self._item_counts.get(item, 0) + 1

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self):
        return iter(self._transactions)

    @property
    def items(self) -> Sequence[str]:
        """All distinct items, in deterministic (sorted) order."""
        return tuple(sorted(self._item_counts))

    def item_support(self, item: str) -> int:
        """Support of a single item (its document frequency)."""
        return self._item_counts.get(item, 0)

    def support(self, itemset: Iterable[str]) -> int:
        """Exact support of ``itemset`` by a full scan (the slow oracle)."""
        wanted = frozenset(itemset)
        if not wanted:
            return len(self._transactions)
        return sum(1 for t in self._transactions if wanted <= t)

    def frequent_items(self, min_support: int) -> List[str]:
        """Items with support ≥ ``min_support``, most frequent first.

        The descending-frequency order is the canonical FP-tree insertion
        order; Apriori/Eclat use it too so all miners enumerate the same
        search space in the same order.
        """
        return sorted(
            (i for i, c in self._item_counts.items() if c >= min_support),
            key=lambda i: (-self._item_counts[i], i),
        )

    def project(self, items: Iterable[str]) -> "TransactionDatabase":
        """Restrict every transaction to ``items`` (drops empty ones).

        The hybrid selector mines only the dense residue subgraphs; the
        projection is how "much smaller than the original graph" turns
        into actual mining speed.
        """
        keep = frozenset(items)
        return TransactionDatabase(
            t & keep for t in self._transactions if t & keep
        )

    def tidsets(self, min_support: int) -> Dict[str, Set[int]]:
        """Vertical layout: item → set of transaction ids (Eclat's input)."""
        vertical: Dict[str, Set[int]] = {}
        frequent = set(self.frequent_items(min_support))
        for tid, transaction in enumerate(self._transactions):
            for item in transaction:
                if item in frequent:
                    vertical.setdefault(item, set()).add(tid)
        return vertical


@dataclass
class MiningResult:
    """Output of one mining run.

    ``itemsets`` maps each frequent itemset to its exact support.
    ``work_units`` is the algorithm's own notion of work (candidate
    membership tests for Apriori, tree nodes for FP-growth, tidset
    intersections for Eclat) — the currency the Section 6.2 feasibility
    comparison is expressed in.
    """

    algorithm: str
    min_support: int
    itemsets: Dict[Itemset, int] = field(default_factory=dict)
    work_units: int = 0

    def maximal_itemsets(self) -> List[Itemset]:
        """Frequent itemsets not contained in any other frequent itemset.

        Algorithm 1's first step ("remove P_i such that ∃P_j, P_i ⊂ P_j")
        reduces its input to exactly these.
        """
        by_size = sorted(self.itemsets, key=len, reverse=True)
        maximal: List[Itemset] = []
        for candidate in by_size:
            if not any(candidate < kept for kept in maximal):
                maximal.append(candidate)
        return maximal

    def itemsets_of_size(self, k: int) -> List[Itemset]:
        return [s for s in self.itemsets if len(s) == k]


def validate_mining_args(
    db: TransactionDatabase, min_support: int, max_size: Optional[int]
) -> None:
    """Shared argument validation for the three miners."""
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    if max_size is not None and max_size < 1:
        raise MiningError(f"max_size must be >= 1, got {max_size}")
    if len(db) == 0:
        raise MiningError("transaction database is empty")
