"""FP-growth (Han et al., DMKD 2004) — mining without candidate generation.

Builds an FP-tree (prefix tree of transactions with items in descending
global frequency) and recursively mines conditional trees.  The FP-tree's
memory footprint is its weakness at PubMed density — Section 6.2 reports
FP-growth "runs out of memory when building the FP-tree".  The
``max_nodes`` budget reproduces that failure mode deterministically:
exceeding it raises :class:`BudgetExceededError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...errors import BudgetExceededError
from .itemsets import (
    Itemset,
    MiningResult,
    TransactionDatabase,
    validate_mining_args,
)


@dataclass
class _Node:
    """One FP-tree node: an item with a count on a prefix path."""

    item: Optional[str]
    count: int = 0
    parent: Optional["_Node"] = None
    children: Dict[str, "_Node"] = field(default_factory=dict)


class _FPTree:
    """An FP-tree plus its header table of per-item node chains."""

    def __init__(self, max_nodes: Optional[int], node_budget_owner: "MiningResult"):
        self.root = _Node(item=None)
        self.header: Dict[str, List[_Node]] = {}
        self.item_counts: Dict[str, int] = {}
        self.num_nodes = 0
        self._max_nodes = max_nodes
        self._result = node_budget_owner

    def insert(self, items: Tuple[str, ...], count: int) -> None:
        """Insert one (ordered) transaction path with multiplicity ``count``."""
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _Node(item=item, parent=node)
                node.children[item] = child
                self.header.setdefault(item, []).append(child)
                self.num_nodes += 1
                self._result.work_units += 1
                if (
                    self._max_nodes is not None
                    and self._result.work_units > self._max_nodes
                ):
                    # work_units counts nodes across the initial tree and
                    # every conditional tree: the total memory footprint.
                    raise BudgetExceededError(
                        "fpgrowth", self._result.work_units, self._max_nodes
                    )
            child.count += count
            self.item_counts[item] = self.item_counts.get(item, 0) + count
            node = child

    def prefix_paths(self, item: str) -> List[Tuple[Tuple[str, ...], int]]:
        """Conditional pattern base of ``item``: (path-to-root, count) pairs."""
        paths: List[Tuple[Tuple[str, ...], int]] = []
        for node in self.header.get(item, ()):
            path: List[str] = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            if path:
                paths.append((tuple(reversed(path)), node.count))
        return paths


def _build_tree(
    transactions: List[Tuple[Tuple[str, ...], int]],
    min_support: int,
    order: Dict[str, int],
    max_nodes: Optional[int],
    result: MiningResult,
) -> _FPTree:
    """Filter infrequent items, sort by global order, build the tree."""
    counts: Dict[str, int] = {}
    for items, count in transactions:
        for item in items:
            counts[item] = counts.get(item, 0) + count
    keep = {item for item, c in counts.items() if c >= min_support}
    tree = _FPTree(max_nodes, result)
    for items, count in transactions:
        filtered = sorted(
            (i for i in items if i in keep), key=lambda i: order[i]
        )
        if filtered:
            tree.insert(tuple(filtered), count)
    return tree


def _mine_tree(
    tree: _FPTree,
    suffix: Itemset,
    min_support: int,
    max_size: Optional[int],
    order: Dict[str, int],
    max_nodes: Optional[int],
    result: MiningResult,
) -> None:
    """Recursive FP-growth over a (conditional) tree."""
    # Visit items least-frequent-first: standard FP-growth order.
    items = sorted(
        tree.item_counts, key=lambda i: order[i], reverse=True
    )
    for item in items:
        support = tree.item_counts[item]
        if support < min_support:
            continue
        itemset = suffix | {item}
        result.itemsets[frozenset(itemset)] = support
        if max_size is not None and len(itemset) >= max_size:
            continue
        conditional = tree.prefix_paths(item)
        if not conditional:
            continue
        subtree = _build_tree(conditional, min_support, order, max_nodes, result)
        if subtree.item_counts:
            _mine_tree(
                subtree, itemset, min_support, max_size, order, max_nodes, result
            )


def fpgrowth(
    db: TransactionDatabase,
    min_support: int,
    max_size: Optional[int] = None,
    max_nodes: Optional[int] = None,
) -> MiningResult:
    """Mine all itemsets with support ≥ ``min_support`` via FP-growth.

    ``max_nodes`` bounds the *total* nodes created across the initial and
    all conditional trees — the memory budget whose exhaustion reproduces
    the paper's out-of-memory failure.
    """
    validate_mining_args(db, min_support, max_size)
    result = MiningResult(algorithm="fpgrowth", min_support=min_support)
    frequent = db.frequent_items(min_support)
    order = {item: rank for rank, item in enumerate(frequent)}

    transactions = [
        (tuple(i for i in t if i in order), 1) for t in db
    ]
    tree = _build_tree(transactions, min_support, order, max_nodes, result)
    _mine_tree(tree, frozenset(), min_support, max_size, order, max_nodes, result)
    return result
