"""Apriori (Agrawal & Srikant, VLDB 1994) — level-wise itemset mining.

Generates size-``k`` candidates from size-``k-1`` frequent itemsets
(prefix join + downward-closure prune), then counts supports with one
scan of the transaction database per level.  The per-level full scans are
what makes Apriori infeasible at PubMed scale (Section 6.2: "it would
take weeks"); the ``budget`` argument lets callers bound that work and
observe the blow-up without incurring it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...errors import BudgetExceededError
from .itemsets import (
    Itemset,
    MiningResult,
    TransactionDatabase,
    validate_mining_args,
)


def _generate_candidates(
    frequent_prev: List[Tuple[str, ...]],
) -> List[Tuple[str, ...]]:
    """Join step: combine itemsets sharing a ``k-2`` prefix, then prune.

    Itemsets are kept as sorted tuples so the classic prefix join applies
    directly.
    """
    prev_set = set(frequent_prev)
    candidates: List[Tuple[str, ...]] = []
    n = len(frequent_prev)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = frequent_prev[i], frequent_prev[j]
            if a[:-1] != b[:-1]:
                # Sorted order means once prefixes diverge for j, they
                # diverge for all later j as well.
                break
            candidate = a + (b[-1],) if a[-1] < b[-1] else b + (a[-1],)
            # Prune: every (k-1)-subset must be frequent.
            if all(
                candidate[:k] + candidate[k + 1 :] in prev_set
                for k in range(len(candidate))
            ):
                candidates.append(candidate)
    return candidates


def apriori(
    db: TransactionDatabase,
    min_support: int,
    max_size: Optional[int] = None,
    budget: Optional[int] = None,
) -> MiningResult:
    """Mine all itemsets with support ≥ ``min_support``.

    Parameters
    ----------
    max_size:
        Stop after this itemset size (the paper caps combinations at ~5–8
        keywords since real context specifications are short).
    budget:
        Maximum work units (candidate-in-transaction subset tests).
        Exceeding it raises :class:`BudgetExceededError` carrying the work
        done so far — how the Section 6.2 infeasibility result is
        demonstrated.
    """
    validate_mining_args(db, min_support, max_size)
    result = MiningResult(algorithm="apriori", min_support=min_support)

    frequent_items = db.frequent_items(min_support)
    for item in frequent_items:
        result.itemsets[frozenset((item,))] = db.item_support(item)
    result.work_units += len(db)  # the L1 counting scan

    level: List[Tuple[str, ...]] = sorted((i,) for i in frequent_items)
    size = 1
    while level and (max_size is None or size < max_size):
        size += 1
        candidates = _generate_candidates(level)
        if not candidates:
            break
        counts: Dict[Tuple[str, ...], int] = {c: 0 for c in candidates}
        candidate_sets = {c: frozenset(c) for c in candidates}
        for transaction in db:
            for candidate in candidates:
                result.work_units += 1
                if budget is not None and result.work_units > budget:
                    raise BudgetExceededError(
                        "apriori", result.work_units, budget
                    )
                if candidate_sets[candidate] <= transaction:
                    counts[candidate] += 1
        level = sorted(
            c for c, count in counts.items() if count >= min_support
        )
        for candidate in level:
            result.itemsets[candidate_sets[candidate]] = counts[candidate]
    return result
