"""Association-rule (frequent-itemset) mining, from scratch (Section 5.1).

Three classic miners over a shared transaction-database abstraction:
Apriori (level-wise, candidate generation), FP-growth (pattern tree), and
Eclat (vertical tidsets).  All three return identical itemset→support
maps on the same inputs — property-tested — and all three accept work or
memory budgets so the Section 6.2 infeasibility findings can be
demonstrated without week-long runs.
"""

from .itemsets import (
    Itemset,
    MiningResult,
    TransactionDatabase,
    validate_mining_args,
)
from .apriori import apriori
from .eclat import declat, eclat
from .fpgrowth import fpgrowth

ALL_MINERS = {
    "apriori": apriori,
    "fpgrowth": fpgrowth,
    "eclat": eclat,
    "declat": declat,
}

__all__ = [
    "Itemset",
    "MiningResult",
    "TransactionDatabase",
    "validate_mining_args",
    "apriori",
    "fpgrowth",
    "eclat",
    "declat",
    "ALL_MINERS",
]
