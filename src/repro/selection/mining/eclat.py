"""Eclat (Zaki, TKDE 2000) — vertical itemset mining by tidset intersection.

Each item carries its *tidset* (the set of transactions containing it);
the support of ``X ∪ {y}`` is ``|tidset(X) ∩ tidset(y)|``, computed by a
depth-first walk over an equivalence-class prefix tree.  Work units count
tidset-intersection element touches, the vertical analogue of Apriori's
scan cost.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ...errors import BudgetExceededError
from .itemsets import (
    Itemset,
    MiningResult,
    TransactionDatabase,
    validate_mining_args,
)


def eclat(
    db: TransactionDatabase,
    min_support: int,
    max_size: Optional[int] = None,
    budget: Optional[int] = None,
) -> MiningResult:
    """Mine all itemsets with support ≥ ``min_support`` via Eclat."""
    validate_mining_args(db, min_support, max_size)
    result = MiningResult(algorithm="eclat", min_support=min_support)

    vertical = db.tidsets(min_support)
    # Ascending-support order keeps intermediate tidsets small — the
    # standard Eclat heuristic.
    items = sorted(vertical, key=lambda i: (len(vertical[i]), i))
    prefix_items: List[Tuple[str, Set[int]]] = [
        (item, vertical[item]) for item in items
    ]
    for item, tids in prefix_items:
        result.itemsets[frozenset((item,))] = len(tids)
    _extend(
        frozenset(), prefix_items, min_support, max_size, budget, result
    )
    return result


def _extend(
    prefix: Itemset,
    candidates: List[Tuple[str, Set[int]]],
    min_support: int,
    max_size: Optional[int],
    budget: Optional[int],
    result: MiningResult,
) -> None:
    """DFS over the equivalence class of ``prefix``."""
    if max_size is not None and len(prefix) + 1 >= max_size:
        return
    for idx, (item, tids) in enumerate(candidates):
        new_prefix = prefix | {item}
        extensions: List[Tuple[str, Set[int]]] = []
        for other, other_tids in candidates[idx + 1 :]:
            result.work_units += min(len(tids), len(other_tids))
            if budget is not None and result.work_units > budget:
                raise BudgetExceededError("eclat", result.work_units, budget)
            joined = tids & other_tids
            if len(joined) >= min_support:
                extensions.append((other, joined))
                result.itemsets[frozenset(new_prefix | {other})] = len(joined)
        if extensions:
            _extend(
                frozenset(new_prefix),
                extensions,
                min_support,
                max_size,
                budget,
                result,
            )


def declat(
    db: TransactionDatabase,
    min_support: int,
    max_size: Optional[int] = None,
    budget: Optional[int] = None,
) -> MiningResult:
    """dEclat: Eclat over *diffsets* (Zaki's optimisation).

    Instead of carrying each candidate's tidset down the DFS, carry the
    *difference* from its parent: ``d(PX) = t(P) \\ t(X)`` at the first
    level and ``d(PXY) = d(PY) \\ d(PX)`` below, with
    ``sup(PXY) = sup(PX) − |d(PXY)|``.  On the dense transaction sets
    view selection mines (documents share most frequent predicates via
    ancestor inheritance), diffsets are far smaller than tidsets, so
    intersections shrink — the ablation bench measures by how much.
    """
    validate_mining_args(db, min_support, max_size)
    result = MiningResult(algorithm="declat", min_support=min_support)

    vertical = db.tidsets(min_support)
    items = sorted(vertical, key=lambda i: (len(vertical[i]), i))
    for item in items:
        result.itemsets[frozenset((item,))] = len(vertical[item])

    # First level: convert sibling tidsets to diffsets relative to each
    # prefix item.
    first_level: List[Tuple[str, Set[int], int]] = [
        (item, vertical[item], len(vertical[item])) for item in items
    ]
    _extend_diffsets(
        frozenset(), first_level, True, min_support, max_size, budget, result
    )
    return result


def _extend_diffsets(
    prefix: Itemset,
    candidates: List[Tuple[str, Set[int], int]],
    first_level: bool,
    min_support: int,
    max_size: Optional[int],
    budget: Optional[int],
    result: MiningResult,
) -> None:
    """DFS carrying (item, diffset-or-tidset, support) triples.

    At the first level ``candidates`` hold tidsets; below, diffsets
    relative to their shared prefix.
    """
    if max_size is not None and len(prefix) + 1 >= max_size:
        return
    for idx, (item, item_set, item_support) in enumerate(candidates):
        new_prefix = prefix | {item}
        extensions: List[Tuple[str, Set[int], int]] = []
        for other, other_set, other_support in candidates[idx + 1 :]:
            result.work_units += min(len(item_set), len(other_set))
            if budget is not None and result.work_units > budget:
                raise BudgetExceededError("declat", result.work_units, budget)
            if first_level:
                # d(item, other) = t(item) \ t(other)
                diff = item_set - other_set
            else:
                # d(P, item, other) = d(P, other) \ d(P, item)
                diff = other_set - item_set
            support = item_support - len(diff)
            if support >= min_support:
                extensions.append((other, diff, support))
                result.itemsets[frozenset(new_prefix | {other})] = support
        if extensions:
            _extend_diffsets(
                frozenset(new_prefix),
                extensions,
                False,
                min_support,
                max_size,
                budget,
                result,
            )
