"""Workload-driven view selection — the RDBMS-style baseline (Section 7).

The paper deliberately rejects classic RDBMS view selection ("given a
query workload and a space constraint, find views maximising the
workload's improvement") in favour of a worst-case guarantee, arguing
that keyword-search workloads are unpredictable and drift over time.
This module implements the rejected alternative faithfully so the claim
can be tested: a greedy benefit-per-storage selector over an observed
workload of context specifications.

The ablation bench pairs it with the hybrid selector and evaluates both
under (a) the training workload and (b) a drifted workload — the
workload-driven catalog wins slightly on (a) and degrades on (b), while
the guarantee-based catalog's worst case is flat.  That is exactly the
trade the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..errors import SelectionError
from .greedy import ViewSizeFn


@dataclass(frozen=True)
class WorkloadEntry:
    """One observed context specification with its frequency."""

    predicates: FrozenSet[str]
    frequency: int = 1
    context_size: int = 0


@dataclass
class WorkloadSelectionReport:
    """What the workload-driven selector chose and why."""

    keyword_sets: List[FrozenSet[str]] = field(default_factory=list)
    storage_used: int = 0
    storage_budget: int = 0
    covered_frequency: int = 0
    total_frequency: int = 0

    @property
    def workload_coverage(self) -> float:
        if self.total_frequency == 0:
            return 0.0
        return self.covered_frequency / self.total_frequency


def _candidate_sets(
    workload: Sequence[WorkloadEntry], max_merge: int = 2
) -> List[FrozenSet[str]]:
    """Candidate view keyword sets: each observed context, plus pairwise
    unions of frequently co-observed contexts (a view covering both)."""
    singles = sorted(
        {entry.predicates for entry in workload}, key=sorted
    )
    candidates = list(singles)
    by_frequency = sorted(
        workload, key=lambda entry: -entry.frequency
    )[: 16 * max_merge]
    for i, a in enumerate(by_frequency):
        for b in by_frequency[i + 1 : i + 1 + max_merge]:
            union = a.predicates | b.predicates
            if union not in candidates:
                candidates.append(union)
    return candidates


def workload_driven_selection(
    workload: Sequence[WorkloadEntry],
    view_size: ViewSizeFn,
    storage_budget: int,
    benefit_fn: Optional[Callable[[WorkloadEntry], float]] = None,
) -> WorkloadSelectionReport:
    """Greedy benefit-per-storage selection under a storage budget.

    ``benefit_fn`` scores one workload entry's saving when covered; the
    default is ``frequency × context_size`` — the classic "work avoided"
    estimate (each covered query saves a context materialisation).

    The storage unit is view tuples (consistent with ``ViewSize``); the
    budget plays the role of the RDBMS space constraint.
    """
    if storage_budget < 1:
        raise SelectionError(f"storage budget must be >= 1, got {storage_budget}")
    if benefit_fn is None:
        benefit_fn = lambda entry: entry.frequency * max(entry.context_size, 1)

    report = WorkloadSelectionReport(storage_budget=storage_budget)
    report.total_frequency = sum(entry.frequency for entry in workload)

    uncovered: List[WorkloadEntry] = list(workload)
    candidates = _candidate_sets(workload)
    chosen: List[FrozenSet[str]] = []
    storage = 0

    while uncovered and candidates:
        best: Optional[Tuple[float, FrozenSet[str], List[WorkloadEntry]]] = None
        for candidate in candidates:
            size = view_size(candidate)
            if storage + size > storage_budget:
                continue
            covered = [
                entry for entry in uncovered if entry.predicates <= candidate
            ]
            if not covered:
                continue
            benefit = sum(benefit_fn(entry) for entry in covered) / max(size, 1)
            if best is None or benefit > best[0]:
                best = (benefit, candidate, covered)
        if best is None:
            break
        _, winner, covered = best
        chosen.append(winner)
        storage += view_size(winner)
        report.covered_frequency += sum(e.frequency for e in covered)
        covered_set = {id(e) for e in covered}
        uncovered = [e for e in uncovered if id(e) not in covered_set]
        candidates = [c for c in candidates if c != winner]

    report.keyword_sets = chosen
    report.storage_used = storage
    return report


def evaluate_coverage(
    keyword_sets: Iterable[FrozenSet[str]],
    workload: Sequence[WorkloadEntry],
) -> float:
    """Fraction of workload frequency whose context some view covers.

    Used to compare selections under drifted workloads.
    """
    keyword_sets = list(keyword_sets)
    total = sum(entry.frequency for entry in workload)
    if total == 0:
        return 0.0
    covered = sum(
        entry.frequency
        for entry in workload
        if any(entry.predicates <= ks for ks in keyword_sets)
    )
    return covered / total


def workload_from_queries(
    queries: Iterable,
    context_sizes: Optional[Dict[FrozenSet[str], int]] = None,
    decay: Optional[float] = None,
) -> List[WorkloadEntry]:
    """Aggregate context-sensitive queries into a workload.

    Accepts anything with a ``predicates`` attribute (``ContextQuery``,
    ``WorkloadQuery.query``...); duplicate contexts merge with summed
    frequency.  Queries with an *empty* context are skipped: views group
    by context predicates, so there is nothing for selection to cover.

    ``decay`` (0 < decay ≤ 1) applies recency weighting over the input
    order: the most recent query counts 1, each step back multiplies by
    ``decay`` — the live recorder's view of a drifting stream.  Weights
    round to integer frequencies with a floor of 1, so an observed
    context never vanishes from the workload entirely.
    """
    if decay is not None and not (0.0 < decay <= 1.0):
        raise SelectionError(f"decay must be in (0, 1], got {decay}")
    queries = list(queries)
    weights: Dict[FrozenSet[str], float] = {}
    n = len(queries)
    for i, query in enumerate(queries):
        key = frozenset(query.predicates)
        if not key:
            continue
        weight = 1.0 if decay is None else decay ** (n - 1 - i)
        weights[key] = weights.get(key, 0.0) + weight
    context_sizes = context_sizes or {}
    return [
        WorkloadEntry(
            predicates=key,
            frequency=max(1, int(round(weight))),
            context_size=context_sizes.get(key, 0),
        )
        for key, weight in sorted(weights.items(), key=lambda kv: sorted(kv[0]))
    ]
