"""Keyword Association Graph (Definition 3, Section 5.2.1).

Vertices are context keywords; the weight of edge ``(m_i, m_j)`` is the
number of documents in which the two co-occur.  Edges below ``T_C`` are
dropped at construction: no high-support clique can contain them, so they
are irrelevant to view selection.  The KAG over-approximates k-ary
co-occurrence — keywords can only co-occur if they form a clique — which
is exactly the property the decomposition schemes exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from .mining.itemsets import TransactionDatabase


@dataclass(frozen=True)
class Edge:
    """An undirected weighted edge, canonically ordered."""

    a: str
    b: str
    weight: int

    @staticmethod
    def make(u: str, v: str, weight: int) -> "Edge":
        return Edge(min(u, v), max(u, v), weight)

    def key(self) -> Tuple[str, str]:
        return (self.a, self.b)


class KeywordAssociationGraph:
    """Undirected weighted co-occurrence graph with subgraph utilities."""

    def __init__(self, adjacency: Dict[str, Dict[str, int]]):
        self._adj = adjacency

    # -- construction -------------------------------------------------------

    @classmethod
    def from_transactions(
        cls,
        db: TransactionDatabase,
        t_c: int,
        min_vertex_support: int | None = None,
    ) -> "KeywordAssociationGraph":
        """Build the KAG from documents' predicate sets.

        Only keywords with individual frequency ≥ ``min_vertex_support``
        (default ``t_c``, the paper's "684 MeSH terms whose frequencies
        are greater than T_C") become vertices, and only pairs co-occurring
        in ≥ ``t_c`` documents become edges.
        """
        min_vertex_support = t_c if min_vertex_support is None else min_vertex_support
        vertices = set(db.frequent_items(min_vertex_support))
        pair_counts: Dict[Tuple[str, str], int] = {}
        for transaction in db:
            present = sorted(transaction & vertices)
            for i, u in enumerate(present):
                for v in present[i + 1 :]:
                    pair_counts[(u, v)] = pair_counts.get((u, v), 0) + 1
        adjacency: Dict[str, Dict[str, int]] = {v: {} for v in vertices}
        for (u, v), weight in pair_counts.items():
            if weight >= t_c:
                adjacency[u][v] = weight
                adjacency[v][u] = weight
        return cls(adjacency)

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[str, str, int]], vertices: Iterable[str] = ()
    ) -> "KeywordAssociationGraph":
        """Build directly from an edge list (tests and examples)."""
        adjacency: Dict[str, Dict[str, int]] = {v: {} for v in vertices}
        for u, v, weight in edges:
            adjacency.setdefault(u, {})[v] = weight
            adjacency.setdefault(v, {})[u] = weight
        return cls(adjacency)

    # -- reads --------------------------------------------------------------

    @property
    def vertices(self) -> List[str]:
        return sorted(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, vertex: str) -> bool:
        return vertex in self._adj

    def neighbors(self, vertex: str) -> Dict[str, int]:
        return self._adj[vertex]

    def has_edge(self, u: str, v: str) -> bool:
        return v in self._adj.get(u, ())

    def edge_weight(self, u: str, v: str) -> int:
        return self._adj.get(u, {}).get(v, 0)

    def edges(self) -> List[Edge]:
        out = []
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u < v:
                    out.append(Edge(u, v, w))
        return sorted(out, key=Edge.key)

    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    # -- structure ----------------------------------------------------------

    def connected_components(self) -> List[FrozenSet[str]]:
        """Connected components, largest first (ties: lexicographic)."""
        seen: Set[str] = set()
        components: List[FrozenSet[str]] = []
        for start in sorted(self._adj):
            if start in seen:
                continue
            stack = [start]
            component: Set[str] = set()
            while stack:
                vertex = stack.pop()
                if vertex in component:
                    continue
                component.add(vertex)
                stack.extend(
                    v for v in self._adj[vertex] if v not in component
                )
            seen |= component
            components.append(frozenset(component))
        return sorted(components, key=lambda c: (-len(c), sorted(c)))

    def subgraph(self, vertices: Iterable[str]) -> "KeywordAssociationGraph":
        """Induced subgraph on ``vertices``."""
        keep = set(vertices)
        adjacency = {
            u: {v: w for v, w in nbrs.items() if v in keep}
            for u, nbrs in self._adj.items()
            if u in keep
        }
        return KeywordAssociationGraph(adjacency)

    def is_clique(self) -> bool:
        """Whether every vertex pair is connected (Section 5.3's residue test)."""
        n = len(self._adj)
        return self.num_edges() == n * (n - 1) // 2

    def remove_light_edges(self, t_c: int) -> "KeywordAssociationGraph":
        """Drop edges with weight < ``T_C`` (initial KAG pruning)."""
        adjacency = {
            u: {v: w for v, w in nbrs.items() if w >= t_c}
            for u, nbrs in self._adj.items()
        }
        return KeywordAssociationGraph(adjacency)

    def __repr__(self) -> str:
        return f"KAG(|V|={len(self)}, |E|={self.num_edges()})"
