"""View selection (Section 5): which views to materialise.

Bottom-up (association-rule mining + greedy cover, Section 5.1),
top-down (KAG decomposition with balanced vertex separators,
Section 5.2), and the hybrid of both that the paper ships (Section 5.3),
plus an exhaustive auditor for the Problem 5.1 guarantee.
"""

from .mining import (
    ALL_MINERS,
    Itemset,
    MiningResult,
    TransactionDatabase,
    apriori,
    declat,
    eclat,
    fpgrowth,
)
from .greedy import (
    coverage_gaps,
    greedy_view_selection,
    remove_subsumed,
)
from .kag import Edge, KeywordAssociationGraph
from .separator import Separator, find_balanced_separator
from .decomposition import (
    DecompositionResult,
    DecompositionStats,
    apply_separator,
    decomposition_select,
)
from .hybrid import (
    SelectionReport,
    decomposition_only_selection,
    hybrid_selection,
    max_combination_size,
    mining_based_selection,
    select_views,
)
from .verify import VerificationResult, verify_selection
from .adaptive import IncrementalReselector, ReselectionReport
from .workload_driven import (
    WorkloadEntry,
    WorkloadSelectionReport,
    evaluate_coverage,
    workload_driven_selection,
    workload_from_queries,
)

__all__ = [
    "IncrementalReselector",
    "ReselectionReport",
    "WorkloadEntry",
    "WorkloadSelectionReport",
    "evaluate_coverage",
    "workload_driven_selection",
    "workload_from_queries",
    "ALL_MINERS",
    "Itemset",
    "MiningResult",
    "TransactionDatabase",
    "apriori",
    "eclat",
    "declat",
    "fpgrowth",
    "coverage_gaps",
    "greedy_view_selection",
    "remove_subsumed",
    "Edge",
    "KeywordAssociationGraph",
    "Separator",
    "find_balanced_separator",
    "DecompositionResult",
    "DecompositionStats",
    "apply_separator",
    "decomposition_select",
    "SelectionReport",
    "decomposition_only_selection",
    "hybrid_selection",
    "max_combination_size",
    "mining_based_selection",
    "select_views",
    "VerificationResult",
    "verify_selection",
]
