"""The one scoring loop both engines share.

Before the planner refactor, :class:`~repro.core.engine.ContextSearchEngine`
and :class:`~repro.core.sharded_engine.ShardRuntime` carried copy-adapted
scoring loops that had to stay float-for-float identical by discipline
alone.  This module is the single implementation: score a candidate set
under resolved collection statistics, then order by ``(-score, id)``.

Determinism contract (tested by the bit-identity regressions): for a
given ranking model, candidate order never affects any document's score —
each score is a pure function of integer statistics and per-document
values — and the tie-break on ascending id makes the final ranking a
pure function of the (unordered) candidate set.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..index.inverted_index import InvertedIndex
from .ranking import RankingFunction
from .statistics import (
    CollectionStatistics,
    DocumentStatistics,
    QueryStatistics,
)

# One scored candidate: (doc_id, score, external_id), local to the index
# that scored it (shard-local ids for a shard, global ids for a flat index).
ScoredCandidate = Tuple[int, float, str]


def score_candidates(
    index: InvertedIndex,
    ranking: RankingFunction,
    keywords: Sequence[str],
    result_ids: Sequence[int],
    collection_stats: CollectionStatistics,
) -> List[ScoredCandidate]:
    """Score every candidate; returns ``(doc_id, score, external_id)``
    triples in input order (callers own the sort key — flat engines rank
    on local ids, shard runtimes on global ids)."""
    query_stats = QueryStatistics.from_keywords(keywords)
    unique_keywords = list(dict.fromkeys(keywords))
    plists = {w: index.postings(w) for w in unique_keywords}
    scored: List[ScoredCandidate] = []
    for doc_id in result_ids:
        doc = index.store.get(doc_id)
        tfs = {w: (plists[w].tf_for(doc_id) or 0) for w in unique_keywords}
        doc_stats = DocumentStatistics(
            length=doc.length,
            unique_terms=doc.unique_terms,
            term_frequencies=tfs,
        )
        score = ranking.score(query_stats, doc_stats, collection_stats)
        scored.append((doc_id, score, doc.external_id))
    return scored


def rank_candidates(
    scored: List[Tuple[float, int, str]],
    top_k: int = None,
) -> List[Tuple[float, int, str]]:
    """Order ``(score, id, external_id)`` triples best-first.

    Ties break on ascending id so rankings are fully deterministic; this
    is the one sort key every engine uses (flat, sharded merge, batch).
    """
    scored = sorted(scored, key=lambda hit: (-hit[0], hit[1]))
    if top_k is not None:
        scored = scored[:top_k]
    return scored
