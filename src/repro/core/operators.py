"""Physical operators (planner layer 3): how a chosen path executes.

Composable execution primitives shared by every entry point.  The flat
:class:`~repro.core.engine.ContextSearchEngine`, the
:class:`~repro.core.sharded_engine.ShardedEngine`'s per-shard runtimes,
and the batch executor all drive the same operator objects through one
:class:`ExecutionContext` that carries the query's
:class:`~repro.index.postings.CostCounter`, resolution report, shared
statistics/materialisation caches, and thread budget.  Sharding is a
*partitioned-execution strategy over these operators*, not a separate
engine: a shard runtime holds one operator set over its sub-index and
the parent merges with :class:`StatsMerge`.

Operators:

* :class:`ViewScan` — resolve statistics from covering views, rare
  keywords falling back through :class:`SelectiveFirstIntersect`;
* :class:`ContextMaterialise` — ``L_m1 ∩ … ∩ L_mc`` (shared-store aware);
* :class:`StraightforwardResolve` — the full Figure 3 plan;
* :class:`SelectiveFirstIntersect` — selective-first conjunctions and
  rare-term statistics;
* :class:`StatsMerge` — exact additive merge of per-partition statistics;
* :class:`SegmentStatsResolve` — the straightforward plan per snapshot
  segment, merged with :class:`StatsMerge` (segment-granularity
  scatter-gather for the segmented index lifecycle);
* :class:`MaxScoreTopK` — disjunctive document-at-a-time top-k.

Every operator charges all work to ``ctx.counter``, which is what makes
the optimizer's predicted-vs-actual report (``cli explain``) honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..errors import EmptyContextError, QueryError
from ..index.intersection import intersect_many
from ..index.inverted_index import InvertedIndex
from ..index.postings import CostCounter
from ..index.searcher import BooleanSearcher
from ..views.catalog import ViewCatalog
from ..views.rewrite import ResolutionReport, compute_rare_term_statistics
from .plan import PlanExecution, StraightforwardPlan
from .query import ContextQuery
from ..index.aggregation import aggregate_count, aggregate_sum
from .statistics import (
    CARDINALITY,
    TOTAL_LENGTH,
    UNIQUE_TERMS,
    CollectionStatistics,
    StatisticSpec,
)


@dataclass
class ExecutionContext:
    """Everything one query evaluation carries through the operators.

    ``counter`` and ``resolution`` are the query's live report fields;
    ``shared_contexts`` is the per-batch materialisation store (queries
    sharing a context intersect it once); ``stats_cache`` is a slot for
    a cross-query statistics cache
    (:class:`~repro.core.stats_cache.StatisticsCache`); ``max_workers``
    is the thread budget parallel operators may consume.
    """

    counter: CostCounter = field(default_factory=CostCounter)
    resolution: ResolutionReport = field(default_factory=ResolutionReport)
    shared_contexts: Optional[Any] = None
    stats_cache: Optional[Any] = None
    max_workers: Optional[int] = None


class SelectiveFirstIntersect:
    """Selective-first conjunctions: result sets and rare-term statistics.

    The "ordinary text-search" operator: free to start from the most
    selective list across keywords and predicates, which pure context
    materialisation cannot (Section 3.1).
    """

    def __init__(self, index: InvertedIndex, use_skips: bool = True):
        self.index = index
        self.searcher = BooleanSearcher(index, use_skips=use_skips)

    def run(
        self,
        ctx: ExecutionContext,
        keywords: Sequence[str],
        predicates: Sequence[str],
    ) -> List[int]:
        """The unranked result ``σ_{Q_k}(D) ∩ σ_P(D)``."""
        return self.searcher.search_conjunction(
            list(keywords), list(predicates), ctx.counter
        )

    def statistics(
        self,
        ctx: ExecutionContext,
        query: ContextQuery,
        specs: Sequence[StatisticSpec],
    ) -> Dict[StatisticSpec, int]:
        """Rare-keyword ``df``/``tc`` via ``L_w ∩ L_m1 ∩ … ∩ L_mc``."""
        return compute_rare_term_statistics(
            self.index, query, specs, ctx.counter
        )


class ViewScan:
    """Resolve collection statistics from covering materialized views.

    Returns ``None`` when no view is usable (the optimizer should have
    predicted that, but per-shard catalogs can diverge from the parent's
    view of feasibility, so execution re-checks).  Fills the resolution
    report's views accounting and routes unresolved (rare-keyword) specs
    through :class:`SelectiveFirstIntersect`.
    """

    def __init__(
        self,
        catalog,
        index: InvertedIndex,
        use_skips: bool = True,
    ):
        from ..views.handle import CatalogHandle

        self.handle = CatalogHandle.ensure(catalog)
        self.fallback = SelectiveFirstIntersect(index, use_skips=use_skips)

    @property
    def catalog(self) -> Optional[ViewCatalog]:
        """The current catalog, read through the swappable handle."""
        return self.handle.catalog

    def run(
        self,
        ctx: ExecutionContext,
        query: ContextQuery,
        specs: Sequence[StatisticSpec],
        usable: Optional[Mapping[StatisticSpec, Any]] = None,
    ) -> Optional[Dict[StatisticSpec, float]]:
        # One handle read per query: the grabbed object stays consistent
        # for this evaluation even if a swap lands mid-flight.
        catalog = self.handle.catalog
        if catalog is None or len(catalog) == 0:
            return None
        values, unresolved, views_used = catalog.resolve(
            specs, query.context, ctx.counter, usable=usable
        )
        if not views_used:
            return None
        resolution = ctx.resolution
        resolution.path = "views"
        resolution.views_used = len(views_used)
        resolution.view_tuples_scanned = sum(v.size for v in views_used)
        resolution.specs_from_views = len(values)
        if unresolved:
            values.update(self.fallback.statistics(ctx, query, unresolved))
            resolution.rare_term_fallbacks = len(
                {spec.term for spec in unresolved}
            )
            resolution.specs_from_fallback = len(unresolved)
        return values


class ContextMaterialise:
    """Materialise ``σ_P(D) = L_m1 ∩ … ∩ L_mc`` (Figure 3's bottom).

    When the context carries a shared materialisation store (batch
    execution), each distinct context is intersected once per batch and
    its recorded cost replayed into every using query's counter, so
    per-query accounting equals standalone execution.
    """

    def __init__(self, index: InvertedIndex, use_skips: bool = True):
        self.index = index
        self.use_skips = use_skips

    def run(
        self, ctx: ExecutionContext, predicates: Sequence[str]
    ) -> List[int]:
        if ctx.shared_contexts is not None:
            context_ids, recorded = ctx.shared_contexts.materialise_with(
                self.index, predicates, use_skips=self.use_skips
            )
            ctx.counter.merge(recorded)
            return context_ids
        return intersect_many(
            [self.index.predicate_postings(m) for m in predicates],
            ctx.counter,
            use_skips=self.use_skips,
        )


class StraightforwardResolve:
    """The full Figure 3 plan as one operator.

    Context materialisation runs through :class:`ContextMaterialise`
    (hence through the batch's shared store when one is present), then
    the aggregations and per-keyword context intersections produce the
    statistics with the unranked result as a by-product.
    """

    def __init__(self, index: InvertedIndex, use_skips: bool = True):
        self.materialise = ContextMaterialise(index, use_skips=use_skips)
        self.plan = StraightforwardPlan(index, use_skips=use_skips)

    def run(
        self,
        ctx: ExecutionContext,
        query: ContextQuery,
        specs: Sequence[StatisticSpec],
    ) -> PlanExecution:
        ctx.resolution.path = "straightforward"
        context_ids = self.materialise.run(ctx, query.predicates)
        precomputed = None
        if ctx.shared_contexts is not None and context_ids:
            # Keyword-independent aggregates are shared across the batch
            # exactly like the materialisation: computed once, recorded
            # cost replayed into every using query's counter.
            precomputed = {}
            lengths = self.plan.index.document_lengths()
            computers = {
                CARDINALITY: lambda c: aggregate_count(context_ids, c),
                TOTAL_LENGTH: lambda c: aggregate_sum(context_ids, lengths, c),
                UNIQUE_TERMS: lambda c: self.plan._unique_terms(
                    context_ids, c
                ),
            }
            for spec in specs:
                compute = computers.get(spec.kind)
                if compute is None:
                    continue
                value, recorded = ctx.shared_contexts.aggregate(
                    query.predicates, spec.kind, compute
                )
                precomputed[spec] = value
                ctx.counter.merge(recorded)
        return self.plan.execute(
            query,
            specs,
            ctx.counter,
            context_ids=context_ids,
            precomputed=precomputed,
        )


class StatsMerge:
    """Exact merge of per-partition statistics (scatter-gather phase 2).

    Every supported Table 1 statistic is additive over disjoint document
    partitions; the one that is not (``utc``, a distinct-count) is
    rejected up front by :meth:`check_additive`.
    """

    @staticmethod
    def check_additive(specs: Sequence[StatisticSpec]) -> None:
        """Reject the one Table 1 statistic that does not sum over shards.

        ``utc(D_P)`` is a distinct-count: partition vocabularies overlap,
        so per-partition values cannot be merged exactly without shipping
        the vocabularies themselves.  No built-in ranking model requests
        it; a custom model that does must run on the single-shard engine.
        """
        for spec in specs:
            if spec.kind == UNIQUE_TERMS:
                raise QueryError(
                    "unique-term count (utc) is not additive across shards; "
                    "use the single-shard engine for rankings that need it"
                )

    @staticmethod
    def zero(specs: Sequence[StatisticSpec]) -> Dict[StatisticSpec, float]:
        """The additive identity (what an empty partition contributes)."""
        return {spec: 0 for spec in specs}

    @staticmethod
    def accumulate(
        merged: Dict[StatisticSpec, float],
        values: Mapping[StatisticSpec, float],
    ) -> None:
        """Fold one partition's values into the running merge, in place."""
        for spec, value in values.items():
            merged[spec] += value

    @classmethod
    def merge(
        cls,
        per_partition: Sequence[Mapping[StatisticSpec, float]],
        specs: Sequence[StatisticSpec],
    ) -> Dict[StatisticSpec, float]:
        """Sum per-partition values over all partitions."""
        merged = cls.zero(specs)
        for values in per_partition:
            cls.accumulate(merged, values)
        return merged

    @staticmethod
    def cardinality_of(
        values: Mapping[StatisticSpec, float], specs: Sequence[StatisticSpec]
    ) -> int:
        """The merged ``|D_P|`` (0 when no cardinality spec was requested)."""
        for spec in specs:
            if spec.kind == CARDINALITY:
                return int(values[spec])
        return 0


class SegmentStatsResolve:
    """Per-segment straightforward resolve, merged with :class:`StatsMerge`.

    The segment-granularity twin of the sharded scatter-gather: a
    snapshot's segments hold disjoint ascending docid ranges, so the
    straightforward plan can run *per segment* and the per-segment
    statistics merge exactly (every supported Table 1 statistic is
    additive over disjoint partitions; the non-additive ``utc`` is
    rejected up front).  Result docids concatenate in segment order,
    which *is* global docid order — bit-identical to the flat plan over
    the whole snapshot.

    ``snapshot`` is anything exposing ``partitions()`` returning
    index-like per-partition views
    (:meth:`repro.lifecycle.snapshot.Snapshot.partitions`).
    """

    def __init__(self, snapshot, use_skips: bool = True):
        self.snapshot = snapshot
        self.use_skips = use_skips

    def run(
        self,
        ctx: ExecutionContext,
        query: ContextQuery,
        specs: Sequence[StatisticSpec],
    ) -> PlanExecution:
        StatsMerge.check_additive(specs)
        ctx.resolution.path = "straightforward"
        merged = StatsMerge.zero(specs)
        result_ids: List[int] = []
        context_size = 0
        matched = False
        for view in self.snapshot.partitions():
            plan = StraightforwardPlan(view, use_skips=self.use_skips)
            try:
                execution = plan.execute(query, specs, ctx.counter)
            except EmptyContextError:
                # The context is simply absent from this segment — it
                # contributes the additive identity, not an error.
                continue
            matched = True
            context_size += execution.context_size
            StatsMerge.accumulate(merged, execution.statistic_values)
            result_ids.extend(execution.result_ids)
        if not matched:
            raise EmptyContextError(
                f"context {query.context} matches no documents"
            )
        return PlanExecution(result_ids, merged, context_size, ctx.counter)


class MaxScoreTopK:
    """Disjunctive document-at-a-time top-k with MaxScore pruning.

    Wraps :class:`~repro.core.topk.MaxScoreScorer` as an operator:
    ``term_bounds`` and ``shared`` let a sharded caller impose global
    score bounds and a cross-shard threshold (pruning accelerators,
    never correctness requirements).
    """

    def __init__(self, index: InvertedIndex, ranking):
        self.index = index
        self.ranking = ranking

    def run(
        self,
        ctx: ExecutionContext,
        keywords: Sequence[str],
        predicates: Sequence[str],
        collection_stats: CollectionStatistics,
        k: int,
        term_bounds: Optional[Mapping[str, float]] = None,
        shared: Optional[Any] = None,
        diagnostics: Optional[Any] = None,
        block_max: bool = True,
    ):
        from .topk import MaxScoreScorer, PredicateMembership

        scorer = MaxScoreScorer(
            self.index,
            list(keywords),
            collection_stats,
            self.ranking,
            context_filter=PredicateMembership(self.index, list(predicates)),
            term_bounds=term_bounds,
            block_max=block_max,
        )
        return scorer.top_k(k, ctx.counter, diagnostics, shared=shared)
