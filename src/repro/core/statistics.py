"""The statistics framework of Section 2.2 / Table 1.

Ranking functions consume three scopes of statistics:

* **query-specific** ``S_q(Q)`` — from the query text alone;
* **document-specific** ``S_d(d)`` — from one document;
* **collection-specific** ``S_c(D)`` — aggregations over a collection.

Context-sensitive ranking (Formula 2) is *exactly* conventional ranking
with ``S_c(D)`` replaced by ``S_c(D_P)``; this module is the shared
vocabulary that makes that substitution a one-argument change.

Each collection-specific statistic is described by a
:class:`StatisticSpec` — an aggregation over the wide sparse table of
Section 4.1 — which is what makes view usability (Theorem 4.1) a
syntactic check: a view answers a spec iff it carries that spec's
parameter column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

from ..errors import QueryError

# Spec kinds: the aggregation shapes of Table 1's collection-specific rows.
CARDINALITY = "cardinality"      # |D_P|          -> COUNT(*)
TOTAL_LENGTH = "total_length"    # len(D_P)       -> SUM(len(d))
DOC_FREQUENCY = "df"             # df(w, D_P)     -> COUNT(docs with w)
TERM_COUNT = "tc"                # tc(w, D_P)     -> SUM(tf(w, d))
UNIQUE_TERMS = "utc"             # utc(D_P)       -> |union of vocabularies|

_TERM_KINDS = frozenset({DOC_FREQUENCY, TERM_COUNT})
_TERMLESS_KINDS = frozenset({CARDINALITY, TOTAL_LENGTH, UNIQUE_TERMS})


@dataclass(frozen=True)
class StatisticSpec:
    """One collection-specific statistic as an aggregation query shape.

    ``kind`` selects the aggregation; term-scoped kinds (``df``, ``tc``)
    additionally carry the keyword ``term`` they aggregate for.
    """

    kind: str
    term: Optional[str] = None

    def __post_init__(self):
        if self.kind in _TERM_KINDS:
            if not self.term:
                raise QueryError(f"statistic kind {self.kind!r} requires a term")
        elif self.kind in _TERMLESS_KINDS:
            if self.term is not None:
                raise QueryError(f"statistic kind {self.kind!r} takes no term")
        else:
            raise QueryError(f"unknown statistic kind: {self.kind!r}")
        # Specs key every statistics dict in the resolve path; precompute
        # the hash instead of re-deriving it per lookup.
        object.__setattr__(self, "_hash", hash((self.kind, self.term)))

    def __hash__(self) -> int:
        return self._hash

    def column_name(self) -> str:
        """The parameter-column name this spec reads in a materialized view."""
        if self.term is not None:
            return f"{self.kind}:{self.term}"
        return self.kind


def cardinality_spec() -> StatisticSpec:
    """Spec for ``|D_P|`` (COUNT(*))."""
    return StatisticSpec(CARDINALITY)


def total_length_spec() -> StatisticSpec:
    """Spec for ``len(D_P)`` (SUM of document lengths)."""
    return StatisticSpec(TOTAL_LENGTH)


def df_spec(term: str) -> StatisticSpec:
    """Spec for ``df(term, D_P)`` (COUNT of documents containing term)."""
    return StatisticSpec(DOC_FREQUENCY, term)


def tc_spec(term: str) -> StatisticSpec:
    """Spec for ``tc(term, D_P)`` (SUM of term frequencies)."""
    return StatisticSpec(TERM_COUNT, term)


@dataclass(frozen=True)
class QueryStatistics:
    """``S_q(Q)``: term counts, length, unique-term count of the query."""

    term_counts: Mapping[str, int]
    length: int
    unique_terms: int

    @classmethod
    def from_keywords(cls, keywords: Sequence[str]) -> "QueryStatistics":
        """Compute all query-specific statistics from the keyword list."""
        counts: Dict[str, int] = {}
        for w in keywords:
            counts[w] = counts.get(w, 0) + 1
        return cls(term_counts=counts, length=len(keywords), unique_terms=len(counts))

    def tq(self, term: str) -> int:
        """``tq(w, Q)``: occurrences of ``w`` in the query."""
        return self.term_counts.get(term, 0)


@dataclass(frozen=True)
class DocumentStatistics:
    """``S_d(d)``: per-document statistics for one candidate document."""

    length: int
    unique_terms: int
    term_frequencies: Mapping[str, int]

    def tf(self, term: str) -> int:
        """``tf(w, d)``: occurrences of ``w`` in the document."""
        return self.term_frequencies.get(term, 0)


@dataclass(frozen=True)
class CollectionStatistics:
    """``S_c(D)`` or ``S_c(D_P)``: aggregations over a (sub-)collection.

    ``df`` and ``tc`` are keyed by term and only need entries for the
    query's keywords; ``tc``/``unique_terms`` are optional because only
    some ranking models consume them.
    """

    cardinality: int
    total_length: int
    df: Mapping[str, int]
    tc: Mapping[str, int] = field(default_factory=dict)
    unique_terms: Optional[int] = None

    @property
    def avgdl(self) -> float:
        """Average document length ``len(D) / |D|`` (Formula 3's pivot)."""
        if self.cardinality <= 0:
            raise QueryError("avgdl undefined for an empty collection")
        return self.total_length / self.cardinality

    def df_for(self, term: str) -> int:
        """``df(term, ·)`` in this collection (0 for unseen terms)."""
        return self.df.get(term, 0)

    def tc_for(self, term: str) -> int:
        """``tc(term, ·)`` in this collection (0 for unseen terms)."""
        return self.tc.get(term, 0)

    @classmethod
    def from_values(
        cls,
        values: Mapping[StatisticSpec, float],
    ) -> "CollectionStatistics":
        """Assemble from resolved spec → value pairs (engine plumbing)."""
        cardinality = 0
        total_length = 0
        unique_terms: Optional[int] = None
        df: Dict[str, int] = {}
        tc: Dict[str, int] = {}
        for spec, value in values.items():
            if spec.kind == CARDINALITY:
                cardinality = int(value)
            elif spec.kind == TOTAL_LENGTH:
                total_length = int(value)
            elif spec.kind == DOC_FREQUENCY:
                df[spec.term] = int(value)
            elif spec.kind == TERM_COUNT:
                tc[spec.term] = int(value)
            elif spec.kind == UNIQUE_TERMS:
                unique_terms = int(value)
        return cls(
            cardinality=cardinality,
            total_length=total_length,
            df=df,
            tc=tc,
            unique_terms=unique_terms,
        )
