"""Ranking functions (Section 2.2).

Every model implements :class:`RankingFunction`: a pure function of
``(S_q, S_d, S_c)``.  Context sensitivity is *not* a property of the
model — the same object scores conventionally when handed ``S_c(D)`` and
context-sensitively when handed ``S_c(D_P)`` (Formulas 1 vs 2).  That is
the paper's central modelling point and the reason the engine, not the
ranking function, decides which statistics to supply.

Models provided:

* :class:`PivotedNormalizationTFIDF` — Formula 3/4, the paper's evaluation
  model (Singhal's pivoted normalisation, ``s = 0.2``).
* :class:`BM25` — Okapi BM25, demonstrating that the framework covers
  probabilistic relevance models (Table 1 generality claim).
* :class:`DirichletLanguageModel` — query-likelihood with Dirichlet
  smoothing; consumes ``tc(w, ·)``, exercising the SUM-of-tf parameter
  columns and the paper's remark that small contexts make smoothing hard.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Sequence

from .statistics import (
    CollectionStatistics,
    DocumentStatistics,
    QueryStatistics,
    StatisticSpec,
    cardinality_spec,
    df_spec,
    tc_spec,
    total_length_spec,
)


class RankingFunction(ABC):
    """A scoring function ``f(S_q(Q), S_d(d), S_c(·))`` (Formula 1/2)."""

    name: str = "abstract"

    @abstractmethod
    def score(
        self,
        query_stats: QueryStatistics,
        doc_stats: DocumentStatistics,
        collection_stats: CollectionStatistics,
    ) -> float:
        """Relevance score of one document; higher is more relevant."""

    @abstractmethod
    def required_collection_specs(
        self, keywords: Sequence[str]
    ) -> List[StatisticSpec]:
        """The collection-specific statistics this model needs for ``keywords``.

        The engine resolves each spec from materialized views when usable
        (Theorem 4.1) and falls back to the straightforward plan otherwise.
        """

    # -- optional per-term decomposition (top-k pruning support) ----------

    @property
    def decomposable(self) -> bool:
        """Whether the score is a sum of per-term parts with zero-tf
        contributions of zero.  Required by the MaxScore top-k scorer:
        models with non-zero smoothing mass for absent terms (language
        models) are not decomposable in this sense."""
        return False

    def term_score(
        self,
        term: str,
        tf: int,
        doc_length: int,
        query_stats: QueryStatistics,
        collection_stats: CollectionStatistics,
    ) -> float:
        """One term's additive score contribution (decomposable models)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not decompose per term"
        )

    def term_upper_bound(
        self,
        term: str,
        max_tf: int,
        query_stats: QueryStatistics,
        collection_stats: CollectionStatistics,
    ) -> float:
        """Upper bound of :meth:`term_score` over all documents.

        MaxScore uses these to skip documents that cannot enter the
        top-k heap; bounds must dominate every achievable term score.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not decompose per term"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PivotedNormalizationTFIDF(RankingFunction):
    """Pivoted-normalisation TF-IDF (Formula 3; context form is Formula 4).

    ``score(Q, d) = Σ_w  (1 + ln(1 + ln tf)) / ((1-s) + s·len(d)/avgdl)
                         · tq(w, Q) · ln((|D| + 1) / df(w, D))``

    The slope ``s`` defaults to 0.2 as in the paper.
    """

    name = "pivoted-tfidf"

    def __init__(self, slope: float = 0.2):
        if not 0.0 <= slope <= 1.0:
            raise ValueError(f"slope must be in [0, 1], got {slope}")
        self.slope = slope

    def required_collection_specs(
        self, keywords: Sequence[str]
    ) -> List[StatisticSpec]:
        specs = [cardinality_spec(), total_length_spec()]
        specs.extend(df_spec(w) for w in dict.fromkeys(keywords))
        return specs

    def score(
        self,
        query_stats: QueryStatistics,
        doc_stats: DocumentStatistics,
        collection_stats: CollectionStatistics,
    ) -> float:
        return sum(
            self.term_score(
                term, doc_stats.tf(term), doc_stats.length, query_stats,
                collection_stats,
            )
            for term in query_stats.term_counts
        )

    @property
    def decomposable(self) -> bool:
        return True

    def term_score(
        self,
        term: str,
        tf: int,
        doc_length: int,
        query_stats: QueryStatistics,
        collection_stats: CollectionStatistics,
    ) -> float:
        if tf <= 0:
            return 0.0
        df = collection_stats.df_for(term)
        if df <= 0:
            # A matched document implies df >= 1 in the scored
            # collection; df == 0 signals stale statistics upstream.
            return 0.0
        avgdl = collection_stats.avgdl
        norm = (1.0 - self.slope) + self.slope * (doc_length / avgdl)
        tf_part = 1.0 + math.log(1.0 + math.log(tf))
        idf_part = math.log((collection_stats.cardinality + 1) / df)
        return (tf_part / norm) * query_stats.tq(term) * idf_part

    def term_upper_bound(
        self,
        term: str,
        max_tf: int,
        query_stats: QueryStatistics,
        collection_stats: CollectionStatistics,
    ) -> float:
        if max_tf <= 0:
            return 0.0
        df = collection_stats.df_for(term)
        if df <= 0:
            return 0.0
        # The pivot norm is minimised (score maximised) by the shortest
        # possible document: norm >= 1 - s.
        tf_part = 1.0 + math.log(1.0 + math.log(max_tf))
        idf_part = max(
            math.log((collection_stats.cardinality + 1) / df), 0.0
        )
        min_norm = max(1.0 - self.slope, 1e-6)  # slope == 1 edge case
        return (tf_part / min_norm) * query_stats.tq(term) * idf_part


class BM25(RankingFunction):
    """Okapi BM25 with the standard ``k1``/``b`` parameterisation.

    Uses the non-negative idf variant ``ln(1 + (N - df + 0.5)/(df + 0.5))``
    so that very frequent in-context terms never contribute negatively.
    """

    name = "bm25"

    def __init__(self, k1: float = 1.2, b: float = 0.75):
        if k1 < 0:
            raise ValueError(f"k1 must be non-negative, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        self.k1 = k1
        self.b = b

    def required_collection_specs(
        self, keywords: Sequence[str]
    ) -> List[StatisticSpec]:
        specs = [cardinality_spec(), total_length_spec()]
        specs.extend(df_spec(w) for w in dict.fromkeys(keywords))
        return specs

    def score(
        self,
        query_stats: QueryStatistics,
        doc_stats: DocumentStatistics,
        collection_stats: CollectionStatistics,
    ) -> float:
        return sum(
            self.term_score(
                term, doc_stats.tf(term), doc_stats.length, query_stats,
                collection_stats,
            )
            for term in query_stats.term_counts
        )

    @property
    def decomposable(self) -> bool:
        return True

    def term_score(
        self,
        term: str,
        tf: int,
        doc_length: int,
        query_stats: QueryStatistics,
        collection_stats: CollectionStatistics,
    ) -> float:
        if tf <= 0:
            return 0.0
        df = collection_stats.df_for(term)
        if df <= 0:
            return 0.0
        n = collection_stats.cardinality
        avgdl = collection_stats.avgdl
        idf = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
        denom = tf + self.k1 * (1.0 - self.b + self.b * doc_length / avgdl)
        return query_stats.tq(term) * idf * (tf * (self.k1 + 1.0)) / denom

    def term_upper_bound(
        self,
        term: str,
        max_tf: int,
        query_stats: QueryStatistics,
        collection_stats: CollectionStatistics,
    ) -> float:
        if max_tf <= 0:
            return 0.0
        df = collection_stats.df_for(term)
        if df <= 0:
            return 0.0
        n = collection_stats.cardinality
        idf = math.log(1.0 + (n - df + 0.5) / (df + 0.5))
        # tf·(k1+1)/(tf + k1·norm) increases in tf and is maximised at the
        # shortest document (norm -> 1-b); bound with norm >= 0 for safety.
        saturation = (max_tf * (self.k1 + 1.0)) / (
            max_tf + self.k1 * (1.0 - self.b)
        )
        return query_stats.tq(term) * idf * saturation


class DirichletLanguageModel(RankingFunction):
    """Query likelihood with Dirichlet-prior smoothing.

    ``log p(Q|d) = Σ_w tq(w) · [ln(tf + μ·p(w|C)) − ln(len(d) + μ)]``
    with ``p(w|C) = tc(w, C) / len(C)``.

    In context-sensitive mode the background model ``p(w|C)`` comes from
    the context — the paper's Section 6.3 remark that small contexts make
    smoothing unreliable falls straight out of this estimator.
    """

    name = "dirichlet-lm"

    # Floor for the background probability: an unseen-in-collection term
    # would otherwise zero the likelihood.
    _EPSILON = 1e-9

    def __init__(self, mu: float = 2000.0):
        if mu <= 0:
            raise ValueError(f"mu must be positive, got {mu}")
        self.mu = mu

    def required_collection_specs(
        self, keywords: Sequence[str]
    ) -> List[StatisticSpec]:
        specs = [cardinality_spec(), total_length_spec()]
        for w in dict.fromkeys(keywords):
            specs.append(tc_spec(w))
        return specs

    def score(
        self,
        query_stats: QueryStatistics,
        doc_stats: DocumentStatistics,
        collection_stats: CollectionStatistics,
    ) -> float:
        coll_len = max(collection_stats.total_length, 1)
        total = 0.0
        for term, tq in query_stats.term_counts.items():
            p_background = max(
                collection_stats.tc_for(term) / coll_len, self._EPSILON
            )
            tf = doc_stats.tf(term)
            total += tq * (
                math.log(tf + self.mu * p_background)
                - math.log(doc_stats.length + self.mu)
            )
        return total


DEFAULT_RANKING_FUNCTION = PivotedNormalizationTFIDF()

ALL_RANKING_FUNCTIONS = {
    PivotedNormalizationTFIDF.name: PivotedNormalizationTFIDF,
    BM25.name: BM25,
    DirichletLanguageModel.name: DirichletLanguageModel,
}
