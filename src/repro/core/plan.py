"""The straightforward execution plan (Section 3.1, Figure 3).

Evaluates a context-sensitive query with no materialized views:

1. intersect the predicate lists to materialise the context
   ``L_m1 ∩ … ∩ L_mc`` (cannot start from a selective keyword — every
   context document is needed for the aggregations);
2. aggregate ``γ_count`` and ``γ_sum(len)`` over the context for
   ``|D_P|`` and ``len(D_P)``;
3. intersect the context with each keyword list for ``df(w_i, D_P)``
   (and sum matched tfs when ``tc(w_i, D_P)`` is requested);
4. the top-level intersection of step 3's outputs is the unranked result.

The plan's :class:`CostCounter` records both actual entries touched and
the paper's analytic model cost, which benches report side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import EmptyContextError
from ..index.aggregation import aggregate_count, aggregate_sum
from ..index.intersection import intersect_many
from ..index.inverted_index import InvertedIndex
from ..index.kernels import intersect_ids_with_tfs
from ..index.postings import CostCounter, PostingList
from .query import ContextQuery
from .statistics import (
    CARDINALITY,
    DOC_FREQUENCY,
    TERM_COUNT,
    TOTAL_LENGTH,
    UNIQUE_TERMS,
    StatisticSpec,
)


@dataclass
class PlanExecution:
    """Everything the straightforward plan produced for one query."""

    result_ids: List[int]
    statistic_values: Dict[StatisticSpec, float]
    context_size: int
    counter: CostCounter = field(default_factory=CostCounter)


def _intersect_with_context(
    context_ids: Sequence[int],
    plist: PostingList,
    counter: Optional[CostCounter],
    want_tc: bool,
) -> tuple:
    """Intersect a materialised context with one keyword list.

    Returns ``(matched_ids, df, tc)`` where ``tc`` is the summed tf of the
    keyword over matched documents (0 when ``want_tc`` is false).  This is
    the ``L_w ∩ L_m1 ∩ L_m2`` operator of Figure 3 with an optional SUM
    piggybacked on the same scan, evaluated by the adaptive array kernel.
    """
    matched, tc_total = intersect_ids_with_tfs(
        context_ids,
        plist.doc_ids,
        plist.tfs,
        plist.segment_size,
        counter=None,
        want_tc=want_tc,
    )
    if counter is not None:
        # Same accounting as the sequential formulation: one touched entry
        # per context document, plus the analytic scan model.
        n = len(plist.doc_ids)
        counter.entries_scanned += len(context_ids)
        counter.model_cost += len(context_ids) + min(len(context_ids), n)
    return matched, len(matched), tc_total


class StraightforwardPlan:
    """Figure 3 evaluated directly over the inverted index."""

    def __init__(self, index: InvertedIndex, use_skips: bool = True):
        self.index = index
        self.use_skips = use_skips

    def execute(
        self,
        query: ContextQuery,
        specs: Sequence[StatisticSpec],
        counter: Optional[CostCounter] = None,
        context_ids: Optional[Sequence[int]] = None,
        precomputed: Optional[Dict[StatisticSpec, float]] = None,
    ) -> PlanExecution:
        """Run the full plan: context, aggregations, per-keyword stats, result.

        ``context_ids`` may carry an already-materialised context (the
        batch executor shares one materialisation across queries with the
        same predicates); the plan then skips the bottom intersection and
        charges nothing for it — the caller owns replaying the recorded
        materialisation cost so per-query accounting stays exact.
        ``precomputed`` extends the same contract to keyword-independent
        aggregates (``|D_P|``, ``len(D_P)``, ``utc(D_P)``): values present
        there are taken as-is and their scans skipped, with the caller
        again owning the cost replay.

        Raises :class:`EmptyContextError` when the context matches nothing —
        context statistics (and therefore ranking) are undefined there.
        """
        counter = counter if counter is not None else CostCounter()
        precomputed = precomputed or {}

        if context_ids is None:
            predicate_lists = [
                self.index.predicate_postings(m) for m in query.predicates
            ]
            context_ids = intersect_many(
                predicate_lists, counter, use_skips=self.use_skips
            )
        if not context_ids:
            raise EmptyContextError(
                f"context {query.context} matches no documents"
            )

        values: Dict[StatisticSpec, float] = {}
        lengths = self.index.document_lengths()
        want_tc_terms = {
            spec.term for spec in specs if spec.kind == TERM_COUNT
        }
        df_terms = {spec.term for spec in specs if spec.kind == DOC_FREQUENCY}

        for spec in specs:
            if spec in precomputed:
                values[spec] = precomputed[spec]
            elif spec.kind == CARDINALITY:
                values[spec] = aggregate_count(context_ids, counter)
            elif spec.kind == TOTAL_LENGTH:
                values[spec] = aggregate_sum(context_ids, lengths, counter)
            elif spec.kind == UNIQUE_TERMS:
                values[spec] = self._unique_terms(context_ids, counter)

        # One context scan per distinct keyword computes df and (when
        # requested) tc together, and doubles as the matched-docs input to
        # the final conjunction.
        per_keyword_matches: Dict[str, List[int]] = {}
        for term in dict.fromkeys(query.keywords):
            plist = self.index.postings(term)
            matched, df, tc_total = _intersect_with_context(
                context_ids, plist, counter, want_tc=term in want_tc_terms
            )
            per_keyword_matches[term] = matched
            if term in df_terms:
                values[StatisticSpec(DOC_FREQUENCY, term)] = df
            if term in want_tc_terms:
                values[StatisticSpec(TERM_COUNT, term)] = tc_total

        result_ids = self._final_conjunction(per_keyword_matches)
        return PlanExecution(
            result_ids=result_ids,
            statistic_values=values,
            context_size=len(context_ids),
            counter=counter,
        )

    def _final_conjunction(
        self, per_keyword_matches: Dict[str, List[int]]
    ) -> List[int]:
        """Top operator of Figure 3: intersect the per-keyword match sets."""
        ordered = sorted(per_keyword_matches.values(), key=len)
        if not ordered:
            return []
        result = set(ordered[0])
        for matched in ordered[1:]:
            result.intersection_update(matched)
            if not result:
                break
        return sorted(result)

    def _unique_terms(
        self, context_ids: Sequence[int], counter: CostCounter
    ) -> int:
        """``utc(D_P)``: distinct searchable terms across the context.

        Requires touching every context document's token sets — the most
        expensive Table 1 statistic, provided for completeness.
        """
        vocab: set = set()
        for doc_id in context_ids:
            doc = self.index.store.get(doc_id)
            for name in self.index.searchable_fields:
                vocab.update(doc.field_tokens.get(name, ()))
        counter.entries_scanned += len(context_ids)
        counter.model_cost += len(context_ids)
        return len(vocab)
