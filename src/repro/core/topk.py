"""Disjunctive (OR-semantics) top-k retrieval with MaxScore pruning.

Section 3.2.2 observes that top-k processing "reorders inverted lists so
that only a small fraction of the lists are processed", but cannot help
context-sensitive ranking *before* collection statistics are known.
Once the statistics ARE known — instantly, from a materialized view —
pruned top-k becomes applicable again.  This module supplies that stage:
document-at-a-time MaxScore over the query terms' posting lists,
restricted to a context, using per-term score upper bounds from the
ranking model.

OR semantics also matches the paper's Section 1.1 example, where the
two citations each match only one of {pancreas, leukemia}: under the
conjunctive model of Section 2.1 neither would be returned, but with
disjunctive scoring their *relative order* is exactly the story the
introduction tells.

Only :class:`~repro.core.ranking.RankingFunction` implementations that
are ``decomposable`` (zero contribution for absent terms) support
pruning; language models smooth absent terms and are rejected.
"""

from __future__ import annotations

import heapq
import threading
from array import array
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import QueryError
from ..index.inverted_index import InvertedIndex
from ..index.postings import CostCounter, PostingList
from .statistics import CollectionStatistics, QueryStatistics


@dataclass
class TopKDiagnostics:
    """How much work pruning saved (printed by the top-k ablation bench).

    ``blocks_considered`` counts (list, block) activations by the
    block-max path — a block whose bound was loaded because a cursor
    entered it.  ``blocks_skipped`` counts block boundaries crossed by a
    block-max skip: each is a block whose remaining postings were
    bypassed without being scored.  Both stay zero when block-max is
    off.
    """

    candidates_seen: int = 0
    candidates_scored: int = 0
    candidates_pruned: int = 0
    heap_updates: int = 0
    blocks_considered: int = 0
    blocks_skipped: int = 0

    def merge(self, other: "TopKDiagnostics") -> None:
        """Fold another diagnostics object's totals into this one."""
        self.candidates_seen += other.candidates_seen
        self.candidates_scored += other.candidates_scored
        self.candidates_pruned += other.candidates_pruned
        self.heap_updates += other.heap_updates
        self.blocks_considered += other.blocks_considered
        self.blocks_skipped += other.blocks_skipped

    def to_dict(self) -> Dict[str, int]:
        return {
            "candidates_seen": self.candidates_seen,
            "candidates_scored": self.candidates_scored,
            "candidates_pruned": self.candidates_pruned,
            "heap_updates": self.heap_updates,
            "blocks_considered": self.blocks_considered,
            "blocks_skipped": self.blocks_skipped,
        }


@dataclass(frozen=True)
class ScoredDocument:
    doc_id: int
    score: float


class PredicateMembership:
    """Lazy context-membership test: ``doc_id in membership``.

    Checks each predicate posting list by binary search instead of
    materialising the context — O(c·log n) per probe.  This is what lets
    the views path run disjunctive top-k without ever paying the
    context-materialisation cost the views exist to avoid.
    """

    def __init__(self, index: InvertedIndex, predicates: Sequence[str]):
        self._lists = [index.predicate_postings(m) for m in predicates]

    def __contains__(self, doc_id: int) -> bool:
        return all(plist.contains(doc_id) for plist in self._lists)


class SharedTopKThreshold:
    """A thread-safe running global k-th best score across shard scorers.

    Parallel per-shard MaxScore runs publish every score they accept.
    Published scores are a subset of all candidate scores, so the k-th
    best published score can only be <= the final global k-th score;
    pruning strictly below it is therefore rank-safe, and a shard that
    starts late inherits the pruning power of everything the earlier
    shards already scored.
    """

    def __init__(self, k: int):
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self.k = k
        self._heap: List[float] = []
        self._lock = threading.Lock()
        self._value = float("-inf")

    @property
    def value(self) -> float:
        """Current global threshold (-inf until k scores are published)."""
        return self._value

    def publish(self, score: float) -> None:
        """Fold one accepted candidate score into the global heap."""
        with self._lock:
            if len(self._heap) < self.k:
                heapq.heappush(self._heap, score)
                if len(self._heap) == self.k:
                    self._value = self._heap[0]
            elif score > self._heap[0]:
                heapq.heappushpop(self._heap, score)
                self._value = self._heap[0]


class MaxScoreScorer:
    """Document-at-a-time MaxScore over one query's posting cursors.

    Terms are ordered by descending upper bound; once the running top-k
    threshold exceeds the total bound of the *non-essential* suffix,
    documents appearing only in those lists cannot reach the heap and
    their cursors are never used to generate candidates.
    """

    # How many candidates between refreshes of an external shared
    # threshold; staleness only costs pruning power, never correctness.
    _SHARED_REFRESH = 64

    def __init__(
        self,
        index: InvertedIndex,
        keywords: Sequence[str],
        collection_stats: CollectionStatistics,
        ranking,
        context_filter: Optional[object] = None,
        term_bounds: Optional[Mapping[str, float]] = None,
        block_max: bool = True,
    ):
        if not ranking.decomposable:
            raise QueryError(
                f"ranking model {ranking.name!r} does not support "
                "MaxScore pruning (non-zero score for absent terms)"
            )
        self.index = index
        self.ranking = ranking
        self.collection_stats = collection_stats
        self.context_filter = context_filter
        self.query_stats = QueryStatistics.from_keywords(keywords)

        unique_terms = list(dict.fromkeys(keywords))
        self._lists: List[Tuple[str, PostingList, float]] = []
        for term in unique_terms:
            plist = index.postings(term)
            if not len(plist):
                continue
            if term_bounds is not None:
                # Externally supplied bounds (e.g. computed from global
                # collection max_tf by a sharded engine) must dominate the
                # local ones; sharing them keeps the bound ordering — and
                # hence per-document summation order — identical across
                # shards, which is what makes sharded scores bit-identical.
                bound = term_bounds.get(term, 0.0)
            else:
                bound = ranking.term_upper_bound(
                    term, plist.max_tf, self.query_stats, collection_stats
                )
            self._lists.append((term, plist, bound))
        # Descending bound: essential lists come first.
        self._lists.sort(key=lambda item: -item[2])
        # Cursor end positions, cached once: lists are frozen for the
        # scorer's lifetime, and on lazily-decoded lists len(doc_ids) is
        # a metadata read we should not repeat in the per-candidate loop.
        self._list_sizes = [len(plist) for _, plist, _ in self._lists]
        # suffix_bounds[i] = total bound of lists i..end.
        self._suffix_bounds = [0.0] * (len(self._lists) + 1)
        for i in range(len(self._lists) - 1, -1, -1):
            self._suffix_bounds[i] = (
                self._suffix_bounds[i + 1] + self._lists[i][2]
            )
        # Per-list, per-block score upper bounds derived from the skip
        # table's block max-tf column.  Bounds are monotone in max_tf, so
        # a block bound never exceeds the list's global bound; it is
        # additionally capped by it so externally supplied (sharded)
        # bounds stay dominant.  Degenerate inputs (an unfrozen list, a
        # list without block metadata) disable the block path entirely —
        # the global-bound loop below is the fallback.
        self._block_bounds: List[array] = []
        self.block_max = False
        if block_max and self._lists:
            try:
                for term, plist, bound in self._lists:
                    cache: Dict[int, float] = {}
                    column = array("d")
                    for block_tf in plist.block_max_tfs:
                        cached = cache.get(block_tf)
                        if cached is None:
                            cached = ranking.term_upper_bound(
                                term, block_tf, self.query_stats, collection_stats
                            )
                            if cached > bound:
                                cached = bound
                            cache[block_tf] = cached
                        column.append(cached)
                    self._block_bounds.append(column)
                self.block_max = True
            except (RuntimeError, AttributeError):
                self._block_bounds = []
                self.block_max = False

    def top_k(
        self,
        k: int,
        counter: Optional[CostCounter] = None,
        diagnostics: Optional[TopKDiagnostics] = None,
        shared: Optional[SharedTopKThreshold] = None,
        initial_threshold: float = float("-inf"),
    ) -> List[ScoredDocument]:
        """Return the k highest-scoring documents (ties: lowest docid).

        ``shared`` / ``initial_threshold`` let a sharded engine tighten the
        pruning threshold with scores other shards have already accepted.
        An external threshold can prune documents out of the *local* top-k,
        but never out of the global one: every comparison against it is
        strict, and its value never exceeds the final global k-th score
        (it is the k-th best of a subset of all candidates).
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if not self._lists:
            return []
        lengths = self.index.document_lengths()
        num_lists = len(self._lists)
        positions = [0] * num_lists
        # Min-heap of (score, -doc_id) so the worst of the top-k is at
        # heap[0] and docid ties resolve toward smaller ids.
        heap: List[Tuple[float, int]] = []
        # Monotone: the max of the local k-th score and every external
        # threshold observed so far.
        threshold = initial_threshold
        if shared is not None and shared.value > threshold:
            threshold = shared.value
        # Index of the first non-essential list: lists [first_ne:] have a
        # combined bound below the threshold.
        first_non_essential = self._essential_prefix(threshold)
        since_refresh = 0
        # Block-max state: current block index per list (-1 = needs
        # refresh) and that block's score bound.  Tracking is lazy — the
        # candidate loop refreshes an entry only when its cursor crossed a
        # block boundary — and only runs once a finite threshold exists,
        # so the pre-heap-fill phase pays no block overhead.
        use_blocks = self.block_max
        block_bounds = self._block_bounds
        sizes = self._list_sizes
        cur_block = [-1] * num_lists
        cur_bound = [0.0] * num_lists
        neg_inf = float("-inf")

        while True:
            if shared is not None:
                since_refresh += 1
                if since_refresh >= self._SHARED_REFRESH:
                    since_refresh = 0
                    external = shared.value
                    if external > threshold:
                        threshold = external
                        first_non_essential = self._essential_prefix(threshold)
            # Next candidate: smallest current docid among essential lists.
            blocks_active = use_blocks and threshold != neg_inf
            candidate = None
            block_sum = 0.0
            for i in range(first_non_essential):
                plist = self._lists[i][1]
                pos = positions[i]
                if pos < sizes[i]:
                    doc_id = plist.doc_ids[pos]
                    if candidate is None or doc_id < candidate:
                        candidate = doc_id
                    if blocks_active:
                        block = pos // plist.segment_size
                        if block != cur_block[i]:
                            cur_block[i] = block
                            cur_bound[i] = block_bounds[i][block]
                            if diagnostics is not None:
                                diagnostics.blocks_considered += 1
                        block_sum += cur_bound[i]
            if candidate is None:
                break
            if (
                blocks_active
                and block_sum + self._suffix_bounds[first_non_essential]
                < threshold
            ):
                # No document in [candidate, min current block end] can
                # reach the threshold: every essential occurrence in that
                # range lies inside its list's current block (docids are
                # sorted), so its term score is bounded by the block
                # bound, and non-essential lists are bounded by their
                # global suffix bound.  The comparison is strict, so
                # exact ties (which could still win the docid tie-break)
                # are never skipped.  Jump every essential cursor past
                # the window; the minimum block end is >= candidate, so
                # the target strictly advances.
                target = None
                for i in range(first_non_essential):
                    plist = self._lists[i][1]
                    if positions[i] < sizes[i]:
                        block_end = plist._seg_maxes[cur_block[i]]
                        if target is None or block_end < target:
                            target = block_end
                target += 1
                for i in range(first_non_essential):
                    plist = self._lists[i][1]
                    pos = positions[i]
                    if pos < sizes[i]:
                        positions[i] = plist.skip_to(pos, target, counter)
                        if diagnostics is not None:
                            # Every block boundary crossed here is a block
                            # whose remaining postings were bypassed
                            # without scoring.
                            landed = positions[i] // plist.segment_size
                            gap = landed - cur_block[i]
                            if gap > 0:
                                diagnostics.blocks_skipped += gap
                        cur_block[i] = -1
                continue
            if diagnostics is not None:
                diagnostics.candidates_seen += 1

            in_context = (
                self.context_filter is None or candidate in self.context_filter
            )
            if in_context:
                score = self._score_candidate(
                    candidate, positions, lengths, threshold, counter, diagnostics
                )
                entry = (score, -candidate) if score is not None else None
                if entry is not None and (len(heap) < k or entry > heap[0]):
                    if len(heap) < k:
                        heapq.heappush(heap, entry)
                    else:
                        heapq.heappushpop(heap, entry)
                    if diagnostics is not None:
                        diagnostics.heap_updates += 1
                    if shared is not None:
                        shared.publish(score)
                    if len(heap) == k and heap[0][0] > threshold:
                        threshold = heap[0][0]
                        first_non_essential = self._essential_prefix(threshold)

            # Advance every essential cursor sitting on the candidate.
            for i in range(first_non_essential):
                plist = self._lists[i][1]
                pos = positions[i]
                if pos < sizes[i] and plist.doc_ids[pos] == candidate:
                    positions[i] = pos + 1
                    if counter is not None:
                        counter.entries_scanned += 1

        ranked = sorted(heap, key=lambda entry: (-entry[0], -entry[1]))
        return [ScoredDocument(doc_id=-neg, score=s) for s, neg in ranked]

    # -- internals ---------------------------------------------------------

    def _essential_prefix(self, threshold: float) -> int:
        """Smallest prefix of lists whose suffix bound clears ``threshold``.

        Lists beyond the returned index cannot, even in combination, lift
        a document over the current threshold, so they never *generate*
        candidates (they still contribute to scoring).
        """
        first = len(self._lists)
        # Strict comparison: a suffix that can exactly *tie* the threshold
        # may still win on the docid tie-break, so it stays essential.
        while first > 1 and self._suffix_bounds[first - 1] < threshold:
            first -= 1
        return first

    def _score_candidate(
        self,
        doc_id: int,
        positions: List[int],
        lengths: Sequence[int],
        threshold: float,
        counter: Optional[CostCounter],
        diagnostics: Optional[TopKDiagnostics],
    ) -> Optional[float]:
        """Score with early termination against the remaining bound."""
        total = 0.0
        doc_length = lengths[doc_id]
        for i, (term, plist, bound) in enumerate(self._lists):
            remaining = self._suffix_bounds[i]
            # Strict: equal-scoring documents must still be scored so the
            # docid tie-break matches exhaustive evaluation exactly.
            if total + remaining < threshold:
                if diagnostics is not None:
                    diagnostics.candidates_pruned += 1
                return None
            positions[i] = plist.skip_to(positions[i], doc_id, counter)
            tf = 0
            if (
                positions[i] < self._list_sizes[i]
                and plist.doc_ids[positions[i]] == doc_id
            ):
                tf = plist.tfs[positions[i]]
            if tf:
                total += self.ranking.term_score(
                    term, tf, doc_length, self.query_stats, self.collection_stats
                )
        if diagnostics is not None:
            diagnostics.candidates_scored += 1
        return total


def exhaustive_disjunctive(
    index: InvertedIndex,
    keywords: Sequence[str],
    collection_stats: CollectionStatistics,
    ranking,
    k: int,
    context_filter: Optional[object] = None,
) -> List[ScoredDocument]:
    """Reference implementation: score every matching document, no pruning.

    Used by tests and the top-k ablation bench as ground truth.
    """
    query_stats = QueryStatistics.from_keywords(keywords)
    lengths = index.document_lengths()
    unique_terms = list(dict.fromkeys(keywords))
    tfs: Dict[int, Dict[str, int]] = {}
    for term in unique_terms:
        for doc_id, tf in index.postings(term):
            if context_filter is not None and doc_id not in context_filter:
                continue
            tfs.setdefault(doc_id, {})[term] = tf
    scored = []
    for doc_id, term_tfs in tfs.items():
        total = sum(
            ranking.term_score(
                term, tf, lengths[doc_id], query_stats, collection_stats
            )
            for term, tf in term_tfs.items()
        )
        scored.append(ScoredDocument(doc_id=doc_id, score=total))
    scored.sort(key=lambda s: (-s.score, s.doc_id))
    return scored[:k]
