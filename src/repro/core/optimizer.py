"""Cost-based path selection (planner layer 2).

The paper's core decision — answer context statistics from a view scan
or run the Figure 3 straightforward plan — is made here, once, for every
entry point.  The optimizer compiles the logical plan
(:mod:`repro.core.logical`), enumerates the feasible physical paths,
prices each with the analytic model of :mod:`repro.core.cost` (Section
3.2, Proposition 3.1, Theorem 4.2), and returns an
:class:`ExplainedPlan` carrying all candidates, the choice, and — after
execution — the actual :class:`~repro.index.postings.CostCounter`, so
``cli explain`` can print predicted vs. actual operation counts.

Physical paths:

``views``
    resolve statistics by scanning covering materialized views (rare
    keywords fall back to selective-first intersections), result set via
    a selective-first conjunction;
``straightforward``
    the full Figure 3 plan: materialise the context, aggregate, one
    context ∩ keyword-list pass per keyword;
``conventional``
    the baseline ``Q_t = Q_k ∪ P``: whole-collection statistics,
    predicates as pure filters (a different ranking, so it is only a
    candidate when the query *asks* for conventional mode);
``per-shard``
    the partitioned strategy: every shard runs its own optimizer over
    its sub-collection and the parent merges additive statistics
    (:class:`~repro.core.sharded_engine.ShardedEngine`).

Because views are exact (Section 4's central invariant), path choice can
never change rankings — only cost — which is what makes cost-based
selection safe to apply retroactively to every engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import QueryError
from ..index.inverted_index import InvertedIndex
from ..index.postings import CostCounter
from ..views.catalog import ViewCatalog
from .cost import estimate_straightforward_cost, estimate_view_cost
from .logical import (
    ALL_MODES,
    MODE_CONTEXT,
    MODE_CONVENTIONAL,
    MODE_DISJUNCTIVE,
    LogicalPlan,
    compile_query,
)
from .query import ContextQuery
from .statistics import DOC_FREQUENCY, TERM_COUNT, StatisticSpec

PATH_VIEWS = "views"
PATH_STRAIGHTFORWARD = "straightforward"
PATH_CONVENTIONAL = "conventional"
# The sharded engine's aggregate label: each shard optimises locally.
PATH_PER_SHARD = "per-shard"
PATH_AUTO = "auto"

# Paths callers may force via the engines' ``path=`` override.
FORCEABLE_PATHS = (PATH_VIEWS, PATH_STRAIGHTFORWARD)


@dataclass
class PathCandidate:
    """One physical path the optimizer considered."""

    name: str
    feasible: bool
    predicted_cost: int
    reason: str = ""
    # Views candidate only: the spec-to-view matching priced here, handed
    # to execution so the catalog is not searched a second time.
    assignment: Optional[Dict[StatisticSpec, object]] = field(
        default=None, repr=False, compare=False
    )


class ExplainedPlan:
    """The optimizer's full decision record for one query.

    ``actual`` is bound to the executing query's live counter, so after
    the query finishes it holds the observed operation counts the
    predictions are compared against.

    ``logical`` accepts either a built :class:`LogicalPlan` or a zero-arg
    factory for one.  The optimizer passes a factory: the logical tree is
    only read by ``explain``/diagnostics, so the serving path should not
    pay to build (or collect) it per query.
    """

    def __init__(
        self,
        logical,
        candidates: Optional[List[PathCandidate]] = None,
        chosen: str = PATH_STRAIGHTFORWARD,
        forced: bool = False,
        actual: Optional[CostCounter] = None,
        shard_choices: Optional[List[Tuple[int, str, int]]] = None,
    ):
        self._logical = logical
        self.candidates = candidates if candidates is not None else []
        self.chosen = chosen
        self.forced = forced
        self.actual = actual
        # Filled by the sharded engine: per-shard (shard_id, chosen,
        # predicted).
        self.shard_choices = shard_choices

    @property
    def logical(self) -> LogicalPlan:
        if callable(self._logical):
            self._logical = self._logical()
        return self._logical

    @property
    def predicted_cost(self) -> int:
        """The chosen candidate's predicted model cost."""
        for candidate in self.candidates:
            if candidate.name == self.chosen:
                return candidate.predicted_cost
        return 0

    def candidate(self, name: str) -> Optional[PathCandidate]:
        for c in self.candidates:
            if c.name == name:
                return c
        return None

    def render(self) -> str:
        """The ``EXPLAIN`` report: logical tree, candidates, costs."""
        lines = [f"mode: {self.logical.mode}", "logical plan:"]
        lines.extend("  " + line for line in self.logical.render().splitlines())
        lines.append("physical paths:")
        for c in self.candidates:
            marker = "->" if c.name == self.chosen else "  "
            if c.feasible:
                lines.append(
                    f"  {marker} {c.name:<16} predicted={c.predicted_cost}"
                )
            else:
                lines.append(
                    f"  {marker} {c.name:<16} infeasible ({c.reason})"
                )
        forced = " (forced)" if self.forced else ""
        lines.append(f"chosen: {self.chosen}{forced}")
        if self.shard_choices:
            lines.append("per-shard choices:")
            for shard_id, chosen, predicted in self.shard_choices:
                lines.append(
                    f"  shard {shard_id}: {chosen} predicted={predicted}"
                )
        lines.append(f"predicted model cost: {self.predicted_cost}")
        if self.actual is not None:
            lines.append(
                f"actual: model_cost={self.actual.model_cost} "
                f"entries_scanned={self.actual.entries_scanned} "
                f"segments_skipped={self.actual.segments_skipped}"
            )
        return "\n".join(lines)


def selective_first_bound(
    index: InvertedIndex,
    keywords: Sequence[str],
    predicates: Sequence[str],
) -> int:
    """Bound the selective-first conjunction over keywords ∧ predicates.

    The intersection starts from the shortest list and probes the others,
    so work is bounded by ``min |L| · #lists`` entry touches — the
    ``|L_i| + |L_i| · M0`` regime of Section 3.2.2.
    """
    lengths = [index.document_frequency(w) for w in dict.fromkeys(keywords)]
    lengths += [index.predicate_frequency(m) for m in dict.fromkeys(predicates)]
    if not lengths:
        return 0
    return min(lengths) * len(lengths)


class Optimizer:
    """Compiles queries to logical plans and picks their physical path.

    One optimizer serves one (index, catalog) pair: the flat engine owns
    one, and every shard runtime owns one over its own sub-index and
    per-shard catalog.  ``view_cost`` prices one view scan answering
    ``n`` specs and defaults to Theorem 4.2's
    :func:`~repro.core.cost.estimate_view_cost` on exact view sizes; a
    sampled oracle (:func:`repro.views.estimator.sampled_view_cost_oracle`)
    can stand in when exact sizes are unavailable.
    """

    def __init__(
        self,
        index: InvertedIndex,
        catalog=None,
        view_cost: Optional[Callable[[object, int], int]] = None,
    ):
        from ..views.handle import CatalogHandle

        self.index = index
        self.handle = CatalogHandle.ensure(catalog)
        # ``view_cost(view, num_specs)`` prices one scan of ``view``
        # answering ``num_specs`` specs.
        self.view_cost = view_cost if view_cost is not None else (
            lambda view, num_specs: estimate_view_cost(view.size, num_specs)
        )

    @property
    def catalog(self) -> Optional[ViewCatalog]:
        """The current catalog, read through the swappable handle."""
        return self.handle.catalog

    # -- public API -----------------------------------------------------

    def plan(
        self,
        query: ContextQuery,
        specs: Sequence[StatisticSpec],
        mode: str = MODE_CONTEXT,
        force: Optional[str] = None,
        top_k: Optional[int] = None,
    ) -> ExplainedPlan:
        """Choose the physical path for one analysed query.

        ``force`` pins the path (``views``/``straightforward``) instead
        of cost-choosing; forcing an infeasible path raises
        :class:`~repro.errors.QueryError`.  Path choice never changes
        rankings, so ``force`` is safe for testing and diagnostics.
        """
        if force in (None, PATH_AUTO):
            force = None
        if mode not in ALL_MODES:
            raise QueryError(f"unknown evaluation mode: {mode!r}")
        spec_list = list(specs)

        def logical() -> LogicalPlan:
            return compile_query(query, spec_list, mode, top_k)

        if mode == MODE_CONVENTIONAL:
            candidates = [self._conventional_candidate(query)]
        else:
            candidates = [
                self._views_candidate(query, specs, mode),
                self._straightforward_candidate(query, mode),
            ]
        plan = ExplainedPlan(logical=logical, candidates=candidates)

        if force is not None:
            if mode == MODE_CONVENTIONAL:
                raise QueryError("conventional mode has no alternative paths")
            if force not in FORCEABLE_PATHS:
                raise QueryError(
                    f"unknown path {force!r} (have auto, "
                    f"{', '.join(FORCEABLE_PATHS)})"
                )
            candidate = plan.candidate(force)
            if candidate is None or not candidate.feasible:
                reason = candidate.reason if candidate else "not a candidate"
                raise QueryError(
                    f"path {force!r} is not available for this query ({reason})"
                )
            plan.chosen = force
            plan.forced = True
            return plan

        feasible = [c for c in candidates if c.feasible]
        if not feasible:
            # Defensive: straightforward/conventional are always feasible.
            raise QueryError("no feasible physical path for query")
        best = min(feasible, key=lambda c: c.predicted_cost)
        plan.chosen = best.name
        return plan

    # -- candidate pricing ----------------------------------------------

    def _conventional_candidate(self, query: ContextQuery) -> PathCandidate:
        """The baseline's only path: one selective-first conjunction.

        Whole-collection statistics are precomputed index metadata and
        cost nothing at query time.
        """
        return PathCandidate(
            name=PATH_CONVENTIONAL,
            feasible=True,
            predicted_cost=selective_first_bound(
                self.index, query.keywords, query.predicates
            ),
        )

    def _views_candidate(
        self, query: ContextQuery, specs: Sequence[StatisticSpec], mode: str
    ) -> PathCandidate:
        """Price the view-scan path, mirroring the catalog's own matching.

        Feasible when at least one spec is answerable from a usable view
        and every unresolved spec has a rare-term fallback (``df``/``tc``
        only).  Predicted cost: one batched scan per distinct view
        (Theorem 4.2) + the selective-first fallback intersections + the
        result-set conjunction (context mode only).
        """
        catalog = self.handle.catalog  # one read per plan: swap-safe
        if catalog is None or len(catalog) == 0:
            return PathCandidate(
                PATH_VIEWS, False, 0, reason="no view catalog"
            )
        specs_per_view: Dict[int, Tuple[object, int]] = {}
        unresolved: List[StatisticSpec] = []
        usable = catalog.find_usable_many(specs, query.context)
        for spec in specs:
            view = usable[spec]
            if view is None:
                unresolved.append(spec)
            else:
                entry = specs_per_view.get(id(view))
                specs_per_view[id(view)] = (view, (entry[1] if entry else 0) + 1)
        if not specs_per_view:
            return PathCandidate(
                PATH_VIEWS, False, 0, reason="no usable view covers the context"
            )
        for spec in unresolved:
            if spec.kind not in (DOC_FREQUENCY, TERM_COUNT):
                return PathCandidate(
                    PATH_VIEWS,
                    False,
                    0,
                    reason=f"no fallback for {spec.column_name()!r}",
                )
        predicted = sum(
            self.view_cost(view, count)
            for view, count in specs_per_view.values()
        )
        num_predicates = len(query.predicates)
        for term in {spec.term for spec in unresolved}:
            predicted += self.index.document_frequency(term) * (
                1 + num_predicates
            )
        predicted += self._candidate_scan_bound(query, mode)
        return PathCandidate(PATH_VIEWS, True, predicted, assignment=usable)

    def _straightforward_candidate(
        self, query: ContextQuery, mode: str
    ) -> PathCandidate:
        """Price the Figure 3 plan with Proposition 3.1's bound."""
        estimate = estimate_straightforward_cost(self.index, query)
        predicted = estimate.total
        if mode == MODE_DISJUNCTIVE:
            # The plan's by-product result set is discarded; the
            # disjunctive scan is extra work on top.
            predicted += self._candidate_scan_bound(query, mode)
        return PathCandidate(PATH_STRAIGHTFORWARD, True, predicted)

    def _candidate_scan_bound(self, query: ContextQuery, mode: str) -> int:
        """Work to produce the candidate documents once statistics exist."""
        if mode == MODE_DISJUNCTIVE:
            # Document-at-a-time over every keyword list (MaxScore can
            # only prune below this).
            return sum(
                self.index.document_frequency(w)
                for w in dict.fromkeys(query.keywords)
            )
        return selective_first_bound(
            self.index, query.keywords, query.predicates
        )
