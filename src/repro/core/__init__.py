"""The paper's primary contribution: context-sensitive query evaluation.

Query model (Section 2.1), statistics framework and ranking functions
(Section 2.2), the straightforward execution plan and cost model
(Section 3), and the engine that routes statistics through materialized
views (Sections 4, 6.3).
"""

from .query import (
    ContextQuery,
    ContextSpecification,
    KeywordQuery,
    parse_query,
)
from .statistics import (
    CARDINALITY,
    DOC_FREQUENCY,
    TERM_COUNT,
    TOTAL_LENGTH,
    UNIQUE_TERMS,
    CollectionStatistics,
    DocumentStatistics,
    QueryStatistics,
    StatisticSpec,
    cardinality_spec,
    df_spec,
    tc_spec,
    total_length_spec,
)
from .ranking import (
    ALL_RANKING_FUNCTIONS,
    BM25,
    DEFAULT_RANKING_FUNCTION,
    DirichletLanguageModel,
    PivotedNormalizationTFIDF,
    RankingFunction,
)
from .plan import PlanExecution, StraightforwardPlan
from .cost import (
    QueryCostEstimate,
    context_materialization_bound,
    estimate_straightforward_cost,
    estimate_view_cost,
    pairwise_intersection_cost,
)
from .engine import (
    BatchExecutor,
    BatchOutcome,
    BatchReport,
    ContextSearchEngine,
    ExecutionReport,
    SearchHit,
    SearchResults,
    SharedContextStore,
)
from .stats_cache import CacheMetrics, CachingSearchEngine, StatisticsCache
from .topk import (
    MaxScoreScorer,
    PredicateMembership,
    ScoredDocument,
    SharedTopKThreshold,
    TopKDiagnostics,
    exhaustive_disjunctive,
)
from .sharded_engine import ShardedEngine, fork_available

__all__ = [
    "ContextQuery",
    "ContextSpecification",
    "KeywordQuery",
    "parse_query",
    "CARDINALITY",
    "DOC_FREQUENCY",
    "TERM_COUNT",
    "TOTAL_LENGTH",
    "UNIQUE_TERMS",
    "CollectionStatistics",
    "DocumentStatistics",
    "QueryStatistics",
    "StatisticSpec",
    "cardinality_spec",
    "df_spec",
    "tc_spec",
    "total_length_spec",
    "RankingFunction",
    "PivotedNormalizationTFIDF",
    "BM25",
    "DirichletLanguageModel",
    "DEFAULT_RANKING_FUNCTION",
    "ALL_RANKING_FUNCTIONS",
    "PlanExecution",
    "StraightforwardPlan",
    "QueryCostEstimate",
    "context_materialization_bound",
    "estimate_straightforward_cost",
    "estimate_view_cost",
    "pairwise_intersection_cost",
    "ContextSearchEngine",
    "ExecutionReport",
    "SearchHit",
    "SearchResults",
    "BatchExecutor",
    "BatchOutcome",
    "BatchReport",
    "SharedContextStore",
    "CacheMetrics",
    "CachingSearchEngine",
    "StatisticsCache",
    "MaxScoreScorer",
    "PredicateMembership",
    "ScoredDocument",
    "SharedTopKThreshold",
    "TopKDiagnostics",
    "exhaustive_disjunctive",
    "ShardedEngine",
    "fork_available",
]
