"""Logical query plans: what a query computes, not how (planner layer 1).

A :class:`LogicalPlan` is a backend-agnostic tree compiled from a
:class:`~repro.core.query.ContextQuery`.  It names the *relational*
shape of evaluation — context materialisation, statistics resolution,
keyword intersection, scoring, top-k — without committing to a physical
strategy.  The optimizer (:mod:`repro.core.optimizer`) then picks the
physical path (view scan vs. the Figure 3 straightforward plan vs. the
conventional baseline, optionally partitioned per shard), and the
operator layer (:mod:`repro.core.operators`) executes it.

Every entry point — :class:`~repro.core.engine.ContextSearchEngine`,
:class:`~repro.core.sharded_engine.ShardedEngine`, and the batch
executor — compiles through this module, so the logical tree is the one
shared vocabulary of the three layers (and what ``cli explain`` prints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import QueryError
from .query import ContextQuery
from .statistics import StatisticSpec

# Evaluation modes a logical plan can be compiled for.
MODE_CONTEXT = "context"
MODE_CONVENTIONAL = "conventional"
MODE_DISJUNCTIVE = "disjunctive"
ALL_MODES = (MODE_CONTEXT, MODE_CONVENTIONAL, MODE_DISJUNCTIVE)


@dataclass(frozen=True)
class LogicalNode:
    """One operator of the logical tree.

    ``op`` is the operator name (``materialise-context``,
    ``resolve-statistics``, ``intersect``, ``score``, ``top-k``, …);
    ``detail`` is a human-readable argument summary for rendering.
    """

    op: str
    detail: str = ""
    children: Tuple["LogicalNode", ...] = ()

    def walk(self):
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass(frozen=True)
class LogicalPlan:
    """The compiled logical tree for one query in one evaluation mode."""

    mode: str
    query: ContextQuery
    specs: Tuple[StatisticSpec, ...]
    root: LogicalNode
    top_k: Optional[int] = None

    def render(self, indent: str = "") -> str:
        """ASCII tree of the plan (the top half of ``cli explain``)."""
        lines: List[str] = []
        self._render_node(self.root, indent, lines, last=True, prefix="")
        return "\n".join(lines)

    def _render_node(self, node, indent, lines, last, prefix):
        connector = "" if not prefix and not indent else ("└─ " if last else "├─ ")
        detail = f"({node.detail})" if node.detail else ""
        lines.append(f"{indent}{prefix}{connector}{node.op}{detail}")
        child_prefix = prefix + ("   " if last else "│  ") if (prefix or connector) else ""
        for i, child in enumerate(node.children):
            self._render_node(
                child, indent, lines, last=i == len(node.children) - 1,
                prefix=child_prefix,
            )


def _spec_summary(specs: Sequence[StatisticSpec]) -> str:
    names = []
    for spec in specs:
        names.append(spec.column_name())
    return ", ".join(names)


def compile_query(
    query: ContextQuery,
    specs: Sequence[StatisticSpec],
    mode: str = MODE_CONTEXT,
    top_k: Optional[int] = None,
) -> LogicalPlan:
    """Compile an *analysed* query into its logical plan tree.

    The tree mirrors Figure 3 for context mode: statistics resolve over
    the materialised context, the unranked result is the keyword ∧
    predicate conjunction, and ranking consumes both.  Conventional mode
    swaps the context statistics for whole-collection ones; disjunctive
    mode swaps the conjunction for a document-at-a-time top-k scan.
    """
    if mode not in ALL_MODES:
        raise QueryError(f"unknown evaluation mode: {mode!r}")
    keywords = ", ".join(query.keywords)
    predicates = " ∧ ".join(query.predicates)

    if mode == MODE_CONVENTIONAL:
        root = LogicalNode(
            "top-k",
            detail=f"k={top_k}" if top_k is not None else "all",
            children=(
                LogicalNode(
                    "score",
                    detail="whole-collection statistics S_c(D)",
                    children=(
                        LogicalNode("global-statistics", detail=_spec_summary(specs)),
                        LogicalNode(
                            "intersect", detail=f"{keywords} ∧ {predicates}"
                        ),
                    ),
                ),
            ),
        )
        return LogicalPlan(mode, query, tuple(specs), root, top_k)

    resolve = LogicalNode(
        "resolve-statistics",
        detail=_spec_summary(specs),
        children=(LogicalNode("materialise-context", detail=predicates),),
    )
    if mode == MODE_DISJUNCTIVE:
        candidates = LogicalNode(
            "disjunctive-scan", detail=f"{keywords} (context-filtered)"
        )
    else:
        candidates = LogicalNode("intersect", detail=f"{keywords} ∧ {predicates}")
    root = LogicalNode(
        "top-k",
        detail=f"k={top_k}" if top_k is not None else "all",
        children=(
            LogicalNode(
                "score",
                detail="context statistics S_c(D_P)",
                children=(resolve, candidates),
            ),
        ),
    )
    return LogicalPlan(mode, query, tuple(specs), root, top_k)
