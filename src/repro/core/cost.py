"""Analytic cost model (Section 3.2).

These functions *predict* work from index metadata alone — no lists are
scanned — so planners and benches can reason about a query before running
it.  The observable counterpart is :class:`~repro.index.postings.CostCounter`,
which the operators fill in during execution; tests check that predictions
genuinely bound observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..index.intersection import model_intersection_cost
from ..index.inverted_index import InvertedIndex
from .query import ContextQuery


def context_materialization_bound(
    index: InvertedIndex, predicates: Sequence[str]
) -> int:
    """Proposition 3.1's worst-case bound: ``Σ_{m_i ∈ P} |L_{m_i}|``.

    The cost of materialising the context (and of every aggregation over
    it, which can only be smaller) is bounded by the summed predicate-list
    lengths.
    """
    return sum(index.predicate_frequency(m) for m in predicates)


def pairwise_intersection_cost(
    index: InvertedIndex, term_a: str, term_b: str, predicates: bool = True
) -> int:
    """Model cost ``M0 · (N_a^o + N_b^o)`` for one predicate-list pair."""
    get = index.predicate_postings if predicates else index.postings
    return model_intersection_cost(get(term_a), get(term_b))


@dataclass(frozen=True)
class QueryCostEstimate:
    """Predicted cost components of one context-sensitive query."""

    context_bound: int
    aggregation_bound: int
    keyword_stats_bound: int

    @property
    def total(self) -> int:
        """Sum of all predicted cost components."""
        return self.context_bound + self.aggregation_bound + self.keyword_stats_bound


def estimate_straightforward_cost(
    index: InvertedIndex, query: ContextQuery
) -> QueryCostEstimate:
    """Upper-bound the straightforward plan's cost for ``query``.

    * context: Proposition 3.1 bound;
    * aggregations: one full context scan each for ``γ_count``/``γ_sum``
      — bounded by the context bound itself (the context is no larger
      than any predicate list);
    * per-keyword statistics: each ``L_w ∩ context`` touches at most
      ``|context| + |L_w|`` entries.
    """
    context_bound = context_materialization_bound(index, query.predicates)
    smallest_predicate = min(
        index.predicate_frequency(m) for m in query.predicates
    )
    aggregation_bound = 2 * smallest_predicate
    keyword_bound = sum(
        smallest_predicate + index.document_frequency(w)
        for w in dict.fromkeys(query.keywords)
    )
    return QueryCostEstimate(
        context_bound=context_bound,
        aggregation_bound=aggregation_bound,
        keyword_stats_bound=keyword_bound,
    )


def estimate_view_cost(view_size: int, num_specs: int) -> int:
    """Cost of answering ``num_specs`` statistics from one view.

    Theorem 4.2: a full scan of the view per statistic lookup batch; the
    implementation answers all specs in a single scan, so the cost is the
    view size (plus negligible per-spec arithmetic, charged as one unit
    each).
    """
    return view_size + num_specs
