"""Query model (Section 2.1).

A context-sensitive query ``Q_c = Q_k | P`` pairs a conventional keyword
query ``Q_k`` (conjunctive keywords over the content fields) with a
context specification ``P`` (conjunctive predicates over the predicate
field).  The unranked result is the set of documents in the context that
contain all the keywords.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import QueryError


def _normalise(terms: Sequence[str], what: str) -> Tuple[str, ...]:
    cleaned = tuple(t.strip() for t in terms if t and t.strip())
    if not cleaned:
        raise QueryError(f"{what} must contain at least one term")
    return cleaned


@dataclass(frozen=True)
class KeywordQuery:
    """A conventional conjunctive keyword query ``Q_t = w_1 ∧ … ∧ w_n``."""

    keywords: Tuple[str, ...]

    def __init__(self, keywords: Sequence[str]):
        object.__setattr__(self, "keywords", _normalise(keywords, "keyword query"))

    def __len__(self) -> int:
        return len(self.keywords)

    def __str__(self) -> str:
        return " ".join(self.keywords)


@dataclass(frozen=True)
class ContextSpecification:
    """``P = p_1 ∧ p_2 … ∧ p_c``: a conjunction of context predicates.

    Predicates are single keywords from the predicate field (Definition 1);
    order is irrelevant to semantics, so they are stored sorted and
    deduplicated, which also makes subset tests against view keyword sets
    cheap.
    """

    predicates: Tuple[str, ...]

    def __init__(self, predicates: Sequence[str]):
        cleaned = _normalise(predicates, "context specification")
        object.__setattr__(self, "predicates", tuple(sorted(set(cleaned))))

    def __len__(self) -> int:
        return len(self.predicates)

    def __str__(self) -> str:
        return " ∧ ".join(self.predicates)

    def as_set(self) -> frozenset:
        """The predicate set (for subset tests against view keyword sets).

        Memoised: catalog matching tests one context against every view,
        so the set is built once per specification, not per test.
        """
        cached = getattr(self, "_predicate_set", None)
        if cached is None:
            cached = frozenset(self.predicates)
            object.__setattr__(self, "_predicate_set", cached)
        return cached

    def is_covered_by(self, keyword_set) -> bool:
        """Whether ``P ⊆ K`` — the usability condition of Theorem 4.1."""
        return self.as_set() <= frozenset(keyword_set)


@dataclass(frozen=True)
class ContextQuery:
    """``Q_c = Q_k | P``: the paper's context-sensitive query."""

    keyword_query: KeywordQuery
    context: ContextSpecification

    @property
    def keywords(self) -> Tuple[str, ...]:
        """The conventional keywords ``Q_k``."""
        return self.keyword_query.keywords

    @property
    def predicates(self) -> Tuple[str, ...]:
        """The context predicates ``P`` (sorted, deduplicated)."""
        return self.context.predicates

    def conventional_equivalent(self) -> KeywordQuery:
        """The conventional query ``Q_t = Q_k ∪ P``.

        Same unranked result as ``Q_c`` (predicates act as boolean
        filters), but ranked with whole-collection statistics — the
        baseline of Sections 6.1 and 6.3.
        """
        return KeywordQuery(self.keywords + self.predicates)

    def __str__(self) -> str:
        return f"{self.keyword_query} | {self.context}"


def parse_query(text: str) -> ContextQuery:
    """Parse the ``"w1 w2 | m1 m2"`` surface syntax into a :class:`ContextQuery`.

    Exactly one ``|`` separates keywords (left) from context predicates
    (right); both sides are whitespace-separated conjunctions.
    """
    if text.count("|") != 1:
        raise QueryError(
            f"expected exactly one '|' separating keywords from context: {text!r}"
        )
    keyword_part, predicate_part = text.split("|")
    return ContextQuery(
        KeywordQuery(keyword_part.split()),
        ContextSpecification(predicate_part.split()),
    )
