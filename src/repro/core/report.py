"""The unified execution report every entry point returns.

Before the planner refactor the flat engine and the sharded engine each
populated their own idea of a report (the sharded one filled a subset of
the fields and kept its per-shard knowledge to itself).  This module is
the single dataclass both return — flat queries leave ``per_shard``
empty, sharded queries attach one :class:`ShardReport` per shard — and
``plan`` carries the optimizer's :class:`~repro.core.optimizer.ExplainedPlan`
(predicted costs, candidates, chosen path) next to the observed counter.

Both report classes round-trip through ``to_dict()``/``from_dict()`` so
they can cross a wire boundary (the query service ships them to clients
and folds them into its metrics): the dict forms are plain JSON-friendly
scalars/lists/dicts, and ``to_dict(from_dict(d)) == d`` holds.  The live
``ExplainedPlan`` does not survive the trip — it holds the logical tree
and live counters — so ``to_dict`` flattens it to a summary (chosen
path, predicted cost, forced flag) that ``predicted_cost`` keeps
answering from after deserialisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from ..index.postings import CostCounter
from ..views.rewrite import ResolutionReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .optimizer import ExplainedPlan


def _counter_to_dict(counter: CostCounter) -> dict:
    return {
        "entries_scanned": counter.entries_scanned,
        "segments_skipped": counter.segments_skipped,
        "model_cost": counter.model_cost,
    }


def _counter_from_dict(payload: dict) -> CostCounter:
    return CostCounter(
        entries_scanned=payload.get("entries_scanned", 0),
        segments_skipped=payload.get("segments_skipped", 0),
        model_cost=payload.get("model_cost", 0),
    )


def _resolution_to_dict(resolution: ResolutionReport) -> dict:
    return {
        "path": resolution.path,
        "views_used": resolution.views_used,
        "view_tuples_scanned": resolution.view_tuples_scanned,
        "rare_term_fallbacks": resolution.rare_term_fallbacks,
        "specs_from_views": resolution.specs_from_views,
        "specs_from_fallback": resolution.specs_from_fallback,
    }


def _resolution_from_dict(payload: dict) -> ResolutionReport:
    return ResolutionReport(
        path=payload.get("path", "straightforward"),
        views_used=payload.get("views_used", 0),
        view_tuples_scanned=payload.get("view_tuples_scanned", 0),
        rare_term_fallbacks=payload.get("rare_term_fallbacks", 0),
        specs_from_views=payload.get("specs_from_views", 0),
        specs_from_fallback=payload.get("specs_from_fallback", 0),
    )


@dataclass
class ShardReport:
    """One shard's slice of a sharded evaluation."""

    shard_id: int
    path: str
    predicted_cost: int = 0
    result_size: int = 0
    counter: CostCounter = field(default_factory=CostCounter)

    def to_dict(self) -> dict:
        """JSON-friendly form (exact round-trip via :meth:`from_dict`)."""
        return {
            "shard_id": self.shard_id,
            "path": self.path,
            "predicted_cost": self.predicted_cost,
            "result_size": self.result_size,
            "counter": _counter_to_dict(self.counter),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardReport":
        """Rebuild a shard report serialised by :meth:`to_dict`."""
        return cls(
            shard_id=payload["shard_id"],
            path=payload["path"],
            predicted_cost=payload.get("predicted_cost", 0),
            result_size=payload.get("result_size", 0),
            counter=_counter_from_dict(payload.get("counter", {})),
        )


@dataclass
class ExecutionReport:
    """Diagnostics for one query evaluation (any engine, any mode).

    ``elapsed_seconds`` is wall-clock; ``counter`` holds the operation
    counts the paper's cost model predicts; ``resolution`` says where the
    collection statistics came from; ``plan`` is the optimizer's decision
    record (predicted vs. actual); ``per_shard`` is the sharded engine's
    per-shard breakdown (``None`` for flat execution).
    """

    elapsed_seconds: float = 0.0
    counter: CostCounter = field(default_factory=CostCounter)
    resolution: ResolutionReport = field(default_factory=ResolutionReport)
    context_size: Optional[int] = None
    result_size: int = 0
    plan: Optional["ExplainedPlan"] = None
    per_shard: Optional[List[ShardReport]] = None
    # A deserialised report has no live plan; the wire summary stands in
    # so ``predicted_cost`` keeps answering (see :meth:`from_dict`).
    plan_summary: Optional[dict] = None
    # Disjunctive-only: top-k pruning diagnostics (candidate and block
    # counters plus the block_max knob state); ``None`` for other modes.
    topk: Optional[dict] = None

    @property
    def path(self) -> str:
        """The chosen resolution path (shorthand for ``resolution.path``)."""
        return self.resolution.path

    @property
    def predicted_cost(self) -> Optional[int]:
        """The optimizer's predicted model cost, when a plan was recorded."""
        if self.plan is not None:
            return self.plan.predicted_cost
        if self.plan_summary is not None:
            return self.plan_summary.get("predicted_cost")
        return None

    def _plan_dict(self) -> Optional[dict]:
        if self.plan is not None:
            return {
                "chosen": self.plan.chosen,
                "predicted_cost": self.plan.predicted_cost,
                "forced": self.plan.forced,
            }
        return self.plan_summary

    def to_dict(self) -> dict:
        """JSON-friendly form; stable under a :meth:`from_dict` round-trip."""
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "counter": _counter_to_dict(self.counter),
            "resolution": _resolution_to_dict(self.resolution),
            "context_size": self.context_size,
            "result_size": self.result_size,
            "plan": self._plan_dict(),
            "per_shard": (
                [shard.to_dict() for shard in self.per_shard]
                if self.per_shard is not None
                else None
            ),
            "topk": self.topk,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionReport":
        """Rebuild a report serialised by :meth:`to_dict`."""
        per_shard = payload.get("per_shard")
        return cls(
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
            counter=_counter_from_dict(payload.get("counter", {})),
            resolution=_resolution_from_dict(payload.get("resolution", {})),
            context_size=payload.get("context_size"),
            result_size=payload.get("result_size", 0),
            plan=None,
            per_shard=(
                [ShardReport.from_dict(entry) for entry in per_shard]
                if per_shard is not None
                else None
            ),
            plan_summary=payload.get("plan"),
            topk=payload.get("topk"),
        )
