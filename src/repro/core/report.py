"""The unified execution report every entry point returns.

Before the planner refactor the flat engine and the sharded engine each
populated their own idea of a report (the sharded one filled a subset of
the fields and kept its per-shard knowledge to itself).  This module is
the single dataclass both return — flat queries leave ``per_shard``
empty, sharded queries attach one :class:`ShardReport` per shard — and
``plan`` carries the optimizer's :class:`~repro.core.optimizer.ExplainedPlan`
(predicted costs, candidates, chosen path) next to the observed counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from ..index.postings import CostCounter
from ..views.rewrite import ResolutionReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .optimizer import ExplainedPlan


@dataclass
class ShardReport:
    """One shard's slice of a sharded evaluation."""

    shard_id: int
    path: str
    predicted_cost: int = 0
    result_size: int = 0
    counter: CostCounter = field(default_factory=CostCounter)


@dataclass
class ExecutionReport:
    """Diagnostics for one query evaluation (any engine, any mode).

    ``elapsed_seconds`` is wall-clock; ``counter`` holds the operation
    counts the paper's cost model predicts; ``resolution`` says where the
    collection statistics came from; ``plan`` is the optimizer's decision
    record (predicted vs. actual); ``per_shard`` is the sharded engine's
    per-shard breakdown (``None`` for flat execution).
    """

    elapsed_seconds: float = 0.0
    counter: CostCounter = field(default_factory=CostCounter)
    resolution: ResolutionReport = field(default_factory=ResolutionReport)
    context_size: Optional[int] = None
    result_size: int = 0
    plan: Optional["ExplainedPlan"] = None
    per_shard: Optional[List[ShardReport]] = None

    @property
    def path(self) -> str:
        """The chosen resolution path (shorthand for ``resolution.path``)."""
        return self.resolution.path

    @property
    def predicted_cost(self) -> Optional[int]:
        """The optimizer's predicted model cost, when a plan was recorded."""
        return self.plan.predicted_cost if self.plan is not None else None
