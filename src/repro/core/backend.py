"""The unified engine contract and the system's one coherence primitive.

Four engine shapes answer queries in this repo — the flat
:class:`~repro.core.engine.ContextSearchEngine`, the in-process
:class:`~repro.core.sharded_engine.ShardedEngine`, the
:class:`~repro.lifecycle.engine.LifecycleEngine` over a mutable
segmented index, and the cluster router over wire-separated shard
workers.  Before this module each of them grew its own ad-hoc notion of
"what changed": a data epoch here, a catalog generation there, a
snapshot version, replica health.  Every cache in the stack (statistics
memoisation, the serving result cache, the planner's coverage cache)
guarded on a different subset, and every new engine shape had to
re-invent the bump-and-check choreography.

This module collapses all of that into three small pieces:

:class:`VersionClock`
    The one thread-safe monotonic counter.  Every version-shaped number
    in the system — index epochs, catalog generations, placement
    generations — is an instance of this class; **no other module may
    mutate a version field directly** (``tools/check_version_discipline
    .py`` enforces this in CI).

:class:`VersionVector`
    The immutable, hashable coherence token ``(data epoch, catalog
    generation, placement generation)``.  It is the *only* cache key and
    invalidation source: the statistics cache, the serving result cache,
    and the router's cache all stamp entries with the vector and drop
    them when any component moves.  ``epoch`` is opaque (an int for one
    index, a tuple of per-shard epochs for a cluster) — caches only ever
    compare vectors for equality, never interpret components.

:class:`VersionAuthority`
    The single bump-and-read point an engine embeds: it owns the catalog
    and placement clocks and reads the data epoch from the engine's
    index, so :meth:`VersionAuthority.vector` is always coherent with
    the state a query would observe.

:class:`SearchBackend` is the structural protocol the four shapes
conform to (``version``, ``install_catalog``, ``close``, and the query
entry points).  Anything satisfying it — a future dense retriever, a
remote tier — plugs into the serving layer, the adaptive-selection
controller, and the conformance suite unchanged.

The load-bearing invariant, inherited from the paper's exactness
theorem and preserved by every coherence event: **a version bump never
changes rankings**.  Views are exact, so installing a catalog (or
re-placing replicas) only redirects *how* statistics are resolved; the
vector exists so caches never serve a result computed under state a
client could distinguish, not because any state is approximate.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional

try:  # Protocol is typing-only; keep the import soft for any odd runtime.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8
    Protocol = object  # type: ignore

    def runtime_checkable(cls):  # type: ignore
        return cls

__all__ = [
    "SearchBackend",
    "VersionAuthority",
    "VersionClock",
    "VersionVector",
]


class VersionClock:
    """A thread-safe monotonic version counter.

    One instance per mutable resource: a segmented index's epoch, a
    catalog handle's generation, a router's placement generation.  The
    counter only moves forward; ``advance_to`` lets a derived resource
    (a re-sharded snapshot, a shipped catalog) adopt its source's
    version so one logical clock spans both.

    This is the **only** place version numbers are mutated — every
    other module reads through a property or calls these methods.
    """

    __slots__ = ("_lock", "_version")

    def __init__(self, start: int = 0):
        self._lock = threading.Lock()
        self._version = int(start)

    @property
    def version(self) -> int:
        return self._version

    def advance(self) -> int:
        """Bump by one; returns the new version."""
        with self._lock:
            self._version += 1
            return self._version

    def advance_to(self, version: int) -> int:
        """Move forward to ``version`` (never backwards); returns the
        current version afterwards."""
        version = int(version)
        with self._lock:
            if version > self._version:
                self._version = version
            return self._version

    def __repr__(self) -> str:
        return f"VersionClock(version={self._version})"


@dataclass(frozen=True)
class VersionVector:
    """The immutable coherence token every cache keys on.

    ``epoch`` is the data component and is deliberately opaque: a flat
    engine reports its index's mutation counter, a lifecycle engine its
    version clock, the router a tuple of per-shard worker epochs.
    ``catalog_generation`` counts catalog hot-swaps;
    ``placement_generation`` counts replica-placement changes (always 0
    for single-node shapes).  Caches compare whole vectors with ``!=``
    — any component moving invalidates — and never interpret them.
    """

    epoch: Any = 0
    catalog_generation: int = 0
    placement_generation: int = 0

    def to_dict(self) -> dict:
        """The wire/report form (healthz, metrics, install acks)."""
        epoch = self.epoch
        if isinstance(epoch, tuple):
            epoch = list(epoch)
        return {
            "epoch": epoch,
            "catalog_generation": self.catalog_generation,
            "placement_generation": self.placement_generation,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "VersionVector":
        epoch = payload.get("epoch", 0)
        if isinstance(epoch, list):
            epoch = tuple(epoch)
        return cls(
            epoch=epoch,
            catalog_generation=int(payload.get("catalog_generation", 0)),
            placement_generation=int(payload.get("placement_generation", 0)),
        )

    def as_tuple(self) -> tuple:
        return (self.epoch, self.catalog_generation, self.placement_generation)

    def __repr__(self) -> str:
        return (
            f"VersionVector(epoch={self.epoch!r}, "
            f"catalog={self.catalog_generation}, "
            f"placement={self.placement_generation})"
        )


class VersionAuthority:
    """An engine's single bump-and-read point for its version vector.

    The data epoch is *read* from the engine's index (``epoch_source``)
    — indexes already own their mutation counter — while the catalog
    and placement generations are *owned* here.  Engines expose
    ``version`` by delegating to :meth:`vector` and route every swap
    through :meth:`bump_catalog` / :meth:`advance_catalog_to`, which is
    what lets the discipline lint forbid ad-hoc counter mutation
    everywhere else.
    """

    def __init__(
        self,
        epoch_source: Optional[Callable[[], Any]] = None,
        catalog_generation: int = 0,
        placement_generation: int = 0,
    ):
        self._epoch_source = epoch_source
        self._catalog_clock = VersionClock(catalog_generation)
        self._placement_clock = VersionClock(placement_generation)

    @property
    def epoch(self) -> Any:
        return self._epoch_source() if self._epoch_source is not None else 0

    @property
    def catalog_generation(self) -> int:
        return self._catalog_clock.version

    @property
    def placement_generation(self) -> int:
        return self._placement_clock.version

    def vector(self) -> VersionVector:
        return VersionVector(
            epoch=self.epoch,
            catalog_generation=self._catalog_clock.version,
            placement_generation=self._placement_clock.version,
        )

    def bump_catalog(self, generation: Optional[int] = None) -> int:
        """One catalog swap happened; returns the new generation.

        ``generation`` (optional) adopts an externally assigned
        generation — the cluster ships the router's generation with the
        catalog so every worker reports the same number — but never
        moves the clock backwards.
        """
        if generation is not None:
            return self._catalog_clock.advance_to(generation)
        return self._catalog_clock.advance()

    def bump_placement(self, generation: Optional[int] = None) -> int:
        """One placement change happened; returns the new generation."""
        if generation is not None:
            return self._placement_clock.advance_to(generation)
        return self._placement_clock.advance()


@runtime_checkable
class SearchBackend(Protocol):
    """The structural contract all four engine shapes satisfy.

    Conformance (asserted for every shape by ``tests/test_backend.py``):

    * ``version`` is a :class:`VersionVector` and is hashable;
    * ``install_catalog(catalog, info=None)`` atomically installs a
      fully built catalog, bumps exactly the vector's catalog
      component, records ``info`` as provenance, and returns the new
      generation — with rankings bit-identical before, during, and
      after the swap;
    * ``close()`` releases resources idempotently.

    Query entry points (``search`` / ``search_conventional`` /
    ``search_disjunctive`` or the service-level ``query`` op for remote
    shapes) are part of the contract behaviourally but not structurally
    — the router answers over the wire, not through local methods.
    """

    @property
    def version(self) -> VersionVector:
        """The backend's current coherence token."""
        ...

    def install_catalog(self, catalog, info: Optional[dict] = None) -> int:
        """Install a catalog; bump and return the catalog generation."""
        ...

    def close(self) -> None:
        """Release resources (idempotent)."""
        ...
