"""The context-sensitive search engine (Sections 3, 4, 6.3).

:class:`ContextSearchEngine` evaluates context-sensitive queries through
the three planner layers:

1. the **logical plan** (:mod:`repro.core.logical`) compiles the query
   into a backend-agnostic tree;
2. the **optimizer** (:mod:`repro.core.optimizer`) prices the physical
   paths — view scan vs. the Figure 3 straightforward plan — with the
   Section 3.2 cost model and picks the cheapest (``path=`` forces one);
3. the **operators** (:mod:`repro.core.operators`) execute the choice
   through one :class:`~repro.core.operators.ExecutionContext`.

Path choice never changes rankings (view statistics are exact), only
cost; every report carries the optimizer's
:class:`~repro.core.optimizer.ExplainedPlan` with predicted vs. actual
operation counts (``cli explain``).

It also evaluates the **conventional baseline** ``Q_t = Q_k ∪ P`` (same
unranked result, whole-collection statistics, predicates as pure boolean
filters), which Sections 6.1 and 6.3 compare against.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import EmptyContextError, QueryError, ReproError
from ..index.intersection import intersect_many
from ..index.inverted_index import InvertedIndex
from ..index.postings import CostCounter
from .logical import MODE_CONTEXT, MODE_CONVENTIONAL, MODE_DISJUNCTIVE
from .operators import (
    ExecutionContext,
    MaxScoreTopK,
    SelectiveFirstIntersect,
    StraightforwardResolve,
    ViewScan,
)
from .optimizer import PATH_AUTO, PATH_VIEWS, Optimizer
from .query import ContextQuery, ContextSpecification, KeywordQuery, parse_query
from .ranking import DEFAULT_RANKING_FUNCTION, RankingFunction
from .report import ExecutionReport
from .scoring import rank_candidates, score_candidates
from .statistics import (
    CollectionStatistics,
    StatisticSpec,
)

__all__ = [
    "BatchExecutor",
    "BatchOutcome",
    "BatchReport",
    "ContextSearchEngine",
    "ExecutionReport",
    "SearchHit",
    "SearchResults",
    "SharedContextStore",
]


@dataclass(frozen=True)
class SearchHit:
    """One ranked result."""

    doc_id: int
    external_id: str
    score: float


@dataclass
class SearchResults:
    """Ranked hits plus the execution report."""

    hits: List[SearchHit]
    report: ExecutionReport

    def __len__(self) -> int:
        return len(self.hits)

    def external_ids(self) -> List[str]:
        """Ranked external document ids (the evaluation-facing view)."""
        return [hit.external_id for hit in self.hits]


class ContextSearchEngine:
    """Evaluates context-sensitive queries and the conventional baseline."""

    def __init__(
        self,
        index: InvertedIndex,
        ranking: Optional[RankingFunction] = None,
        catalog: Optional["ViewCatalog"] = None,
        use_skips: bool = True,
    ):
        from ..views.handle import CatalogHandle

        if not index.committed:
            raise QueryError("index must be committed before searching")
        self.index = index
        self.ranking = ranking if ranking is not None else DEFAULT_RANKING_FUNCTION
        # One swappable handle shared by every layer that reads the
        # catalog (operator, optimizer, this engine): swapping it is the
        # adaptive-selection hot-swap, and a single assignment retargets
        # all readers atomically.
        self.catalog_handle = CatalogHandle.ensure(catalog)
        self.use_skips = use_skips
        # The shared physical-operator set (also driven per shard by the
        # sharded engine and per batch by the batch executor).
        self._op_conjunction = SelectiveFirstIntersect(index, use_skips=use_skips)
        self._op_view_scan = ViewScan(
            self.catalog_handle, index, use_skips=use_skips
        )
        self._op_straightforward = StraightforwardResolve(index, use_skips=use_skips)
        self._op_topk = MaxScoreTopK(index, self.ranking)
        self.optimizer = Optimizer(index, self.catalog_handle)
        # Back-compat attributes (wrappers and tests reach for these).
        self.searcher = self._op_conjunction.searcher
        self.plan = self._op_straightforward.plan
        self._global_tc_cache: Dict[str, int] = {}
        # Provenance of the most recent catalog install (reselection
        # pass summary) — surfaced by healthz/info alongside the
        # version vector.
        self.last_reselection: Optional[dict] = None

    # -- public API ---------------------------------------------------------

    def close(self) -> None:
        """Release the underlying index's resources (idempotent).

        For mmap-backed flat indexes this unmaps the block file; for
        lifecycle snapshots it drops compiled-posting caches.  The
        serving layer calls this on retired engines after epoch bumps.
        """
        closer = getattr(self.index, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "ContextSearchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def epoch(self) -> int:
        """The index's mutation counter (cache keys derive from this)."""
        return self.index.epoch

    @property
    def catalog(self) -> Optional["ViewCatalog"]:
        """The current catalog, read through the swappable handle."""
        return self.catalog_handle.catalog

    @property
    def catalog_generation(self) -> int:
        """How many hot-swaps the catalog has seen (serving caches fold
        this into their epoch so a swap invalidates cached results)."""
        return self.catalog_handle.generation

    @property
    def version(self) -> "VersionVector":
        """This engine's coherence token (see :mod:`repro.core.backend`).

        The flat engine has no replica placement, so the placement
        component is always 0.
        """
        from .backend import VersionVector

        return VersionVector(
            epoch=self.epoch,
            catalog_generation=self.catalog_handle.generation,
        )

    def install_catalog(
        self,
        catalog: Optional["ViewCatalog"],
        info: Optional[dict] = None,
        generation: Optional[int] = None,
    ) -> int:
        """Atomically install a fully built catalog; returns the new
        generation (the :class:`~repro.core.backend.SearchBackend`
        entry point, shared by all engine shapes).

        Rankings are unchanged by construction (views are exact), so the
        swap only redirects *how* statistics are resolved.  In-flight
        queries that already grabbed the old catalog finish against it.
        ``info`` records the install's provenance (a reselection pass
        summary); ``generation`` adopts an externally assigned
        generation (cluster installs ship the router's).
        """
        new_generation = self.catalog_handle.swap(
            catalog, generation=generation
        )
        self.last_reselection = dict(info) if info else None
        return new_generation

    def swap_catalog(self, catalog: Optional["ViewCatalog"]) -> int:
        """Deprecated alias for :meth:`install_catalog` (kept so
        pre-unification call sites and tests keep working)."""
        return self.install_catalog(catalog)

    def search(
        self,
        query: Union[ContextQuery, str],
        top_k: Optional[int] = None,
        path: str = PATH_AUTO,
    ) -> SearchResults:
        """Evaluate ``Q_c = Q_k | P`` with context-sensitive ranking.

        ``path`` forces the physical path (``"views"``/
        ``"straightforward"``) instead of cost-based selection; forcing
        never changes the ranking, only the work done to produce it.
        """
        return self._search_impl(query, top_k, None, path=path)

    def explain(
        self,
        query: Union[ContextQuery, str],
        top_k: Optional[int] = None,
        mode: str = MODE_CONTEXT,
        path: str = PATH_AUTO,
        block_max: bool = True,
    ) -> SearchResults:
        """Evaluate ``query`` in ``mode`` and return results whose report
        carries the optimizer's :class:`ExplainedPlan` (predicted vs.
        actual operation counts).  All modes record plans; this helper
        just names the intent and dispatches on ``mode``."""
        if mode == MODE_CONVENTIONAL:
            return self.search_conventional(query, top_k=top_k)
        if mode == MODE_DISJUNCTIVE:
            return self.search_disjunctive(
                query,
                top_k=top_k if top_k is not None else 10,
                path=path,
                block_max=block_max,
            )
        return self.search(query, top_k=top_k, path=path)

    def _search_impl(
        self,
        query: Union[ContextQuery, str],
        top_k: Optional[int],
        shared_contexts: Optional["SharedContextStore"],
        path: str = PATH_AUTO,
        max_workers: Optional[int] = None,
    ) -> SearchResults:
        """The :meth:`search` body, parameterised over context sharing.

        ``shared_contexts`` (batch execution) replaces the plan's bottom
        intersection with a per-batch materialisation store; the recorded
        materialisation cost is replayed into this query's counter so the
        per-query accounting is identical to standalone execution.
        """
        query = self._coerce(query)
        started = time.perf_counter()
        report = ExecutionReport()
        analyzed = self._analyze(query)

        specs = self.ranking.required_collection_specs(analyzed.keywords)
        values, result_ids = self._resolve_statistics(
            analyzed, specs, report, shared_contexts, path, max_workers
        )
        collection_stats = CollectionStatistics.from_values(values)
        if collection_stats.cardinality <= 0:
            raise EmptyContextError(
                f"context {analyzed.context} matches no documents"
            )
        report.context_size = collection_stats.cardinality

        hits = self._score(analyzed.keywords, result_ids, collection_stats, top_k)
        report.result_size = len(result_ids)
        report.elapsed_seconds = time.perf_counter() - started
        return SearchResults(hits=hits, report=report)

    def search_conventional(
        self,
        query: Union[ContextQuery, str],
        top_k: Optional[int] = None,
    ) -> SearchResults:
        """Evaluate the baseline ``Q_t = Q_k ∪ P``.

        Identical unranked result; ranking uses whole-collection statistics
        and the predicates contribute nothing to scores (Section 6.1's
        conventional ranking).
        """
        query = self._coerce(query)
        started = time.perf_counter()
        report = ExecutionReport()
        report.resolution.path = "conventional"
        analyzed = self._analyze(query)

        specs = self.ranking.required_collection_specs(analyzed.keywords)
        plan = self.optimizer.plan(analyzed, specs, mode=MODE_CONVENTIONAL)
        report.plan = plan
        plan.actual = report.counter
        ctx = ExecutionContext(
            counter=report.counter, resolution=report.resolution
        )
        result_ids = self._op_conjunction.run(
            ctx, analyzed.keywords, analyzed.predicates
        )
        collection_stats = self._global_statistics(analyzed.keywords)
        hits = self._score(analyzed.keywords, result_ids, collection_stats, top_k)
        report.result_size = len(result_ids)
        report.elapsed_seconds = time.perf_counter() - started
        return SearchResults(hits=hits, report=report)

    def search_disjunctive(
        self,
        query: Union[ContextQuery, str],
        top_k: int = 10,
        path: str = PATH_AUTO,
        block_max: bool = True,
    ) -> SearchResults:
        """OR-semantics context-sensitive search with MaxScore pruning.

        Returns the ``top_k`` documents *in the context* that match at
        least one keyword, ranked context-sensitively.  Collection
        statistics resolve exactly as in :meth:`search` (optimizer-chosen
        path; ``path=`` forces one); the candidate scan then runs
        document-at-a-time over the keyword posting lists with a lazy
        context-membership filter, so on the views path the context is
        never materialised at all.

        ``block_max`` toggles block-max skipping (per-block score upper
        bounds over the skip-table blocks); rankings are bit-identical
        either way — the knob exists for A/B and ablation runs.

        Requires a ``decomposable`` ranking model (TF-IDF, BM25);
        language models raise :class:`~repro.errors.QueryError`.
        """
        from .topk import TopKDiagnostics

        query = self._coerce(query)
        started = time.perf_counter()
        report = ExecutionReport()
        analyzed = self._analyze(query)

        specs = self.ranking.required_collection_specs(analyzed.keywords)
        values = self._resolve_statistics_only(analyzed, specs, report, path)
        collection_stats = CollectionStatistics.from_values(values)
        if collection_stats.cardinality <= 0:
            raise EmptyContextError(
                f"context {analyzed.context} matches no documents"
            )
        report.context_size = collection_stats.cardinality

        ctx = ExecutionContext(
            counter=report.counter, resolution=report.resolution
        )
        diagnostics = TopKDiagnostics()
        scored = self._op_topk.run(
            ctx,
            analyzed.keywords,
            analyzed.predicates,
            collection_stats,
            top_k,
            diagnostics=diagnostics,
            block_max=block_max,
        )
        report.topk = dict(diagnostics.to_dict(), block_max=block_max)
        hits = [
            SearchHit(
                doc_id=s.doc_id,
                external_id=self.index.store.get(s.doc_id).external_id,
                score=s.score,
            )
            for s in scored
        ]
        report.result_size = len(hits)
        report.elapsed_seconds = time.perf_counter() - started
        return SearchResults(hits=hits, report=report)

    def _resolve_statistics_only(
        self,
        query: ContextQuery,
        specs: Sequence[StatisticSpec],
        report: ExecutionReport,
        path: str = PATH_AUTO,
    ) -> Dict[StatisticSpec, float]:
        """Statistics resolution without computing a conjunctive result set.

        Same optimizer-driven policy as :meth:`_resolve_statistics`; used
        by evaluation modes (disjunctive top-k) that build their own
        candidate stream.
        """
        plan = self.optimizer.plan(
            query, specs, mode=MODE_DISJUNCTIVE, force=path
        )
        report.plan = plan
        plan.actual = report.counter
        ctx = ExecutionContext(
            counter=report.counter, resolution=report.resolution
        )
        if plan.chosen == PATH_VIEWS:
            chosen = plan.candidate(PATH_VIEWS)
            values = self._op_view_scan.run(
                ctx, query, specs, usable=chosen.assignment if chosen else None
            )
            if values is not None:
                return values
        execution = self._op_straightforward.run(ctx, query, specs)
        report.context_size = execution.context_size
        return execution.statistic_values

    def context_statistics(
        self, context: Union[ContextSpecification, Sequence[str]], keywords: Sequence[str] = ()
    ) -> CollectionStatistics:
        """Collection statistics of a context (diagnostics/tests helper).

        Always computed via the straightforward plan, bypassing views, so
        it doubles as the ground truth views are checked against.
        """
        if not isinstance(context, ContextSpecification):
            context = ContextSpecification(context)
        keywords = [self._analyze_keyword(w) for w in keywords] or ["__none__"]
        probe = ContextQuery(KeywordQuery(keywords), context)
        specs = self.ranking.required_collection_specs(keywords)
        execution = self.plan.execute(probe, specs)
        return CollectionStatistics.from_values(execution.statistic_values)

    # -- internals ------------------------------------------------------------

    def _coerce(self, query: Union[ContextQuery, str]) -> ContextQuery:
        if isinstance(query, str):
            return parse_query(query)
        return query

    def _analyze_keyword(self, keyword: str) -> str:
        analyzed = self.index.analyzer.analyze_query_term(keyword)
        if analyzed is None:
            raise QueryError(f"keyword {keyword!r} was removed by analysis (stopword?)")
        return analyzed

    def _analyze(self, query: ContextQuery) -> ContextQuery:
        """Run query terms through the index's analyzers."""
        keywords = [self._analyze_keyword(w) for w in query.keywords]
        predicates = []
        for m in query.predicates:
            analyzed = self.index.predicate_analyzer.analyze_query_term(m)
            if analyzed is None:
                raise QueryError(f"empty context predicate: {m!r}")
            predicates.append(analyzed)
        return ContextQuery(
            KeywordQuery(keywords), ContextSpecification(predicates)
        )

    def _resolve_statistics(
        self,
        query: ContextQuery,
        specs: Sequence[StatisticSpec],
        report: ExecutionReport,
        shared_contexts: Optional["SharedContextStore"] = None,
        path: str = PATH_AUTO,
        max_workers: Optional[int] = None,
    ) -> Tuple[Dict[StatisticSpec, float], List[int]]:
        """Obtain collection statistics and the unranked result set.

        The optimizer picks the physical path; the two outputs are
        coupled deliberately: on the views path the result set is a cheap
        selective-first conjunction, while on the straightforward path
        the plan has already produced the result as a by-product of
        computing per-keyword statistics (Figure 3).

        With ``shared_contexts`` the straightforward branch reuses the
        batch's materialisation of this context (computing it on first
        use) and replays its recorded cost into this query's counter.
        """
        plan = self.optimizer.plan(query, specs, mode=MODE_CONTEXT, force=path)
        report.plan = plan
        plan.actual = report.counter
        ctx = ExecutionContext(
            counter=report.counter,
            resolution=report.resolution,
            shared_contexts=shared_contexts,
            max_workers=max_workers,
        )
        if plan.chosen == PATH_VIEWS:
            chosen = plan.candidate(PATH_VIEWS)
            values = self._op_view_scan.run(
                ctx, query, specs, usable=chosen.assignment if chosen else None
            )
            if values is not None:
                result_ids = self._op_conjunction.run(
                    ctx, query.keywords, query.predicates
                )
                return values, result_ids
        execution = self._op_straightforward.run(ctx, query, specs)
        report.context_size = execution.context_size
        return execution.statistic_values, execution.result_ids

    def _global_statistics(self, keywords: Sequence[str]) -> CollectionStatistics:
        """``S_c(D)``: precomputed whole-collection statistics.

        ``tc`` is only gathered when the ranking model actually requests
        it (language models); computing it costs a posting-list scan per
        keyword, which would unfairly slow the conventional baseline the
        benchmarks compare against.
        """
        from .statistics import TERM_COUNT

        df = {w: self.index.document_frequency(w) for w in keywords}
        wants_tc = any(
            spec.kind == TERM_COUNT
            for spec in self.ranking.required_collection_specs(keywords)
        )
        tc = {w: self._global_tc(w) for w in keywords} if wants_tc else {}
        return CollectionStatistics(
            cardinality=self.index.num_docs,
            total_length=self.index.total_length,
            df=df,
            tc=tc,
        )

    def _global_tc(self, term: str) -> int:
        cached = self._global_tc_cache.get(term)
        if cached is None:
            cached = sum(tf for _, tf in self.index.postings(term))
            self._global_tc_cache[term] = cached
        return cached

    def _score(
        self,
        keywords: Sequence[str],
        result_ids: Sequence[int],
        collection_stats: CollectionStatistics,
        top_k: Optional[int],
    ) -> List[SearchHit]:
        """Score the result set and return hits sorted best-first.

        One shared loop (:mod:`repro.core.scoring`) serves this engine
        and the shard runtimes; ties break on ascending docid so rankings
        are fully deterministic.
        """
        scored = score_candidates(
            self.index, self.ranking, keywords, result_ids, collection_stats
        )
        ranked = rank_candidates(
            [(score, doc_id, ext) for doc_id, score, ext in scored], top_k
        )
        return [
            SearchHit(doc_id=doc_id, external_id=ext, score=score)
            for score, doc_id, ext in ranked
        ]


# -- batched execution ---------------------------------------------------------


class SharedContextStore:
    """Per-batch store of materialised contexts, keyed canonically.

    Many workload queries share a context (the paper's usage model: a
    specialist works inside one context for a session), so a batch
    materialises each distinct context exactly once.  The first query to
    need a context computes it under a per-key lock and records the
    :class:`CostCounter` of that intersection; every query (including the
    first) then has the recorded cost merged into its own counter, so
    per-query accounting is exactly what standalone execution would have
    charged while the work happens once.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[str, ...], Tuple[List[int], CostCounter]] = {}
        self._aggregates: Dict[tuple, Tuple[float, CostCounter]] = {}
        self._locks: Dict[tuple, threading.Lock] = {}
        self._registry_lock = threading.Lock()
        self.materialisations = 0
        self.reuses = 0
        self.aggregations = 0
        self.aggregate_reuses = 0

    @staticmethod
    def key_for(predicates: Sequence[str]) -> Tuple[str, ...]:
        """Canonical key: sorted de-duplicated predicate tuple."""
        return tuple(sorted(set(predicates)))

    def materialise(
        self, engine: "ContextSearchEngine", predicates: Sequence[str]
    ) -> Tuple[List[int], CostCounter]:
        """The context's docids plus the recorded materialisation cost."""
        return self.materialise_with(
            engine.index, predicates, use_skips=engine.plan.use_skips
        )

    def materialise_with(
        self,
        index: InvertedIndex,
        predicates: Sequence[str],
        use_skips: bool = True,
    ) -> Tuple[List[int], CostCounter]:
        """Index-level entry point the ContextMaterialise operator uses."""
        key = self.key_for(predicates)
        with self._registry_lock:
            lock = self._locks.setdefault(key, threading.Lock())
        with lock:
            entry = self._entries.get(key)
            if entry is None:
                counter = CostCounter()
                context_ids = intersect_many(
                    [index.predicate_postings(m) for m in predicates],
                    counter,
                    use_skips=use_skips,
                )
                entry = (context_ids, counter)
                self._entries[key] = entry
                self.materialisations += 1
            else:
                self.reuses += 1
            return entry

    def aggregate(
        self,
        predicates: Sequence[str],
        kind: str,
        compute: Callable[[CostCounter], float],
    ) -> Tuple[float, CostCounter]:
        """A keyword-independent context aggregate, computed once per batch.

        Context aggregations (``|D_P|``, ``len(D_P)``, ``utc(D_P)``)
        depend only on the context, not the keywords, so queries sharing
        a context share these exactly like the materialisation itself:
        ``compute`` runs once against a fresh :class:`CostCounter`, and
        the recorded cost is replayed into every using query's counter
        (the caller merges it), keeping per-query accounting identical
        to standalone execution while the scan happens once.
        """
        key = (self.key_for(predicates), kind)
        with self._registry_lock:
            lock = self._locks.setdefault(key, threading.Lock())
        with lock:
            entry = self._aggregates.get(key)
            if entry is None:
                counter = CostCounter()
                entry = (compute(counter), counter)
                self._aggregates[key] = entry
                self.aggregations += 1
            else:
                self.aggregate_reuses += 1
            return entry

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class BatchOutcome:
    """One query's slot in a batch: results or the error that stopped it."""

    query: str
    results: Optional[SearchResults] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the query produced results."""
        return self.results is not None


@dataclass
class BatchReport:
    """Everything a batch run produced, in input order."""

    outcomes: List[BatchOutcome]
    mode: str
    workers: int
    elapsed_seconds: float = 0.0
    distinct_contexts: int = 0
    shared_context_hits: int = 0

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def errors(self) -> List[BatchOutcome]:
        """The outcomes that failed."""
        return [o for o in self.outcomes if not o.ok]

    def aggregate_counter(self) -> CostCounter:
        """Summed per-query counters (as-if-sequential work).

        Because shared materialisations replay their recorded cost into
        every query that uses them, this total equals what running each
        query standalone would have charged — the batch's actual saving
        shows up in ``elapsed_seconds`` and ``shared_context_hits``.
        """
        total = CostCounter()
        for outcome in self.outcomes:
            if outcome.results is not None:
                total.merge(outcome.results.report.counter)
        return total


class BatchExecutor:
    """Evaluates a workload of context queries as one batch.

    Per-query evaluation routes through the same planner stack as
    standalone :meth:`ContextSearchEngine.search` — the optimizer picks
    each query's path; the batch adds three sharing levers, all
    answer-preserving:

    * **shared context materialisations** — each distinct context is
      intersected once per batch (:class:`SharedContextStore`, reached
      through the ContextMaterialise operator), with the recorded cost
      replayed into every using query's counter;
    * **shared decoded postings** — all keyword/predicate posting columns
      the workload touches are prefetched once up front
      (:meth:`InvertedIndex.prefetch`), so the batch pins each column a
      single time instead of per query;
    * **thread fan-out** — queries run concurrently on a
      :class:`~concurrent.futures.ThreadPoolExecutor`; evaluation is
      read-only over the index so no locking is needed beyond the
      materialisation store.  The pool size is also the per-query
      :class:`~repro.core.operators.ExecutionContext` thread budget.

    Context sharing requires a plain :class:`ContextSearchEngine`;
    wrapped engines (e.g. ``CachingSearchEngine``) still get prefetch and
    fan-out, with per-query evaluation delegated to their ``search``.
    """

    def __init__(
        self,
        engine,
        max_workers: Optional[int] = None,
        share_contexts: bool = True,
    ):
        if max_workers is not None and max_workers < 1:
            raise QueryError(f"max_workers must be >= 1, got {max_workers}")
        self.engine = engine
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.share_contexts = share_contexts and isinstance(
            engine, ContextSearchEngine
        )

    # -- public API ---------------------------------------------------------

    def run(
        self,
        queries: Iterable[Union[ContextQuery, str]],
        top_k: Optional[int] = None,
        mode: str = "context",
        path: str = PATH_AUTO,
    ) -> BatchReport:
        """Evaluate every query; outcomes come back in input order.

        ``mode`` selects the evaluation path: ``"context"``
        (context-sensitive ranking), ``"conventional"`` (the baseline),
        or ``"disjunctive"`` (OR-semantics top-k).  ``path`` forces the
        physical path for every query in the batch (the query service's
        degradation lever: forcing skips candidate pricing, and never
        changes rankings).  A failing query (empty context,
        stopword-only keywords, …) records its error and never aborts
        the batch.
        """
        if mode not in ("context", "conventional", "disjunctive"):
            raise QueryError(f"unknown batch mode: {mode!r}")
        queries = list(queries)
        started = time.perf_counter()
        shared = SharedContextStore() if (
            self.share_contexts and mode == "context"
        ) else None
        self._prefetch(queries)

        outcomes: List[Optional[BatchOutcome]] = [None] * len(queries)
        if len(queries) <= 1 or self.max_workers == 1:
            for i, query in enumerate(queries):
                outcomes[i] = self._evaluate(query, top_k, mode, shared, path)
        else:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                futures = {
                    pool.submit(
                        self._evaluate, query, top_k, mode, shared, path
                    ): i
                    for i, query in enumerate(queries)
                }
                for future, i in futures.items():
                    outcomes[i] = future.result()

        report = BatchReport(
            outcomes=[o for o in outcomes if o is not None],
            mode=mode,
            workers=self.max_workers,
            elapsed_seconds=time.perf_counter() - started,
        )
        if shared is not None:
            report.distinct_contexts = len(shared)
            report.shared_context_hits = shared.reuses
        return report

    # -- internals ----------------------------------------------------------

    def _evaluate(
        self,
        query: Union[ContextQuery, str],
        top_k: Optional[int],
        mode: str,
        shared: Optional[SharedContextStore],
        path: str = PATH_AUTO,
    ) -> BatchOutcome:
        text = query if isinstance(query, str) else str(query)
        try:
            if mode == "conventional":
                results = self.engine.search_conventional(query, top_k=top_k)
            elif mode == "disjunctive":
                results = self.engine.search_disjunctive(
                    query, top_k=top_k if top_k is not None else 10, path=path
                )
            elif shared is not None:
                results = self.engine._search_impl(
                    query, top_k, shared, path=path,
                    max_workers=self.max_workers,
                )
            else:
                results = self.engine.search(query, top_k=top_k, path=path)
            return BatchOutcome(query=text, results=results)
        except ReproError as exc:
            return BatchOutcome(query=text, error=f"{type(exc).__name__}: {exc}")

    def _prefetch(self, queries: Sequence[Union[ContextQuery, str]]) -> None:
        """Pin every posting column the workload touches, once."""
        index = getattr(self.engine, "index", None)
        if index is None:
            return
        keywords: List[str] = []
        predicates: List[str] = []
        for query in queries:
            try:
                parsed = parse_query(query) if isinstance(query, str) else query
            except ReproError:
                continue  # the per-query evaluation will surface the error

            keywords.extend(parsed.keywords)
            predicates.extend(parsed.predicates)
        index.prefetch(dict.fromkeys(keywords), dict.fromkeys(predicates))
