"""LRU cache for resolved collection statistics.

A specialist works inside one context for a whole session (the paper's
usage model), so consecutive queries repeat the same ``S_c(D_P)``
lookups — including the per-keyword ``df`` values for recurring query
terms.  This cache sits in front of the engine's statistic resolution
and memoises spec values per context.

Correctness note: cached values are exact copies of resolved statistics,
so the views-never-change-answers invariant extends to
cache-never-changes-answers (tested).  The cache must be invalidated on
document ingestion — :meth:`CachingSearchEngine.invalidate` exists for
exactly the :func:`repro.views.maintenance.maintain_catalog` call sites.

Freshness is additionally guarded by the engine's
:class:`~repro.core.backend.VersionVector` (falling back to the bare
``epoch`` for wrappers that predate it): any index mutation or catalog
swap moves the vector, and :meth:`CachingSearchEngine._check_epoch`
self-invalidates on the next lookup, so a forgotten explicit
``invalidate()`` can narrow freshness but never corrupt it.  One
coherence token, no scattered epoch-bump sites.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.query import ContextQuery
from ..core.statistics import StatisticSpec

ContextKey = Tuple[str, ...]


def canonical_context_key(predicates: Iterable[str]) -> ContextKey:
    """Canonicalise a context's predicates into a hashable cache key.

    Order and multiplicity are irrelevant to context semantics
    (Definition 1: a conjunction of predicates), so the key is the sorted
    de-duplicated predicate tuple.  ``{"b", "a"}``, ``["a", "b", "a"]``
    and ``("b", "a")`` all canonicalise to ``("a", "b")`` and share one
    cache entry.
    """
    return tuple(sorted(set(predicates)))


@dataclass
class CacheMetrics:
    """Hit accounting (per spec, not per query)."""

    spec_hits: int = 0
    spec_misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.spec_hits + self.spec_misses
        return self.spec_hits / total if total else 0.0


class StatisticsCache:
    """Per-context LRU of resolved spec values.

    Keys are canonicalised with :func:`canonical_context_key`, so any
    iterable of predicates (set, list, tuple, in any order) addresses the
    same entry.
    """

    def __init__(self, max_contexts: int = 128):
        if max_contexts < 1:
            raise ValueError(f"max_contexts must be >= 1, got {max_contexts}")
        self.max_contexts = max_contexts
        self._entries: "OrderedDict[ContextKey, Dict[StatisticSpec, float]]" = (
            OrderedDict()
        )
        self.metrics = CacheMetrics()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, context_key: Iterable[str], specs: Sequence[StatisticSpec]
    ) -> Tuple[Dict[StatisticSpec, float], List[StatisticSpec]]:
        """Return ``(cached values, missing specs)`` for one context."""
        context_key = canonical_context_key(context_key)
        entry = self._entries.get(context_key)
        if entry is None:
            self.metrics.spec_misses += len(specs)
            return {}, list(specs)
        self._entries.move_to_end(context_key)
        found: Dict[StatisticSpec, float] = {}
        missing: List[StatisticSpec] = []
        for spec in specs:
            if spec in entry:
                found[spec] = entry[spec]
            else:
                missing.append(spec)
        self.metrics.spec_hits += len(found)
        self.metrics.spec_misses += len(missing)
        return found, missing

    def store(
        self,
        context_key: Iterable[str],
        values: Dict[StatisticSpec, float],
    ) -> None:
        """Merge resolved values into the context's entry (LRU-evicting)."""
        context_key = canonical_context_key(context_key)
        entry = self._entries.get(context_key)
        if entry is None:
            entry = self._entries[context_key] = {}
        entry.update(values)
        self._entries.move_to_end(context_key)
        while len(self._entries) > self.max_contexts:
            self._entries.popitem(last=False)
            self.metrics.evictions += 1

    def invalidate(self) -> None:
        """Drop everything (call after any document ingestion)."""
        self.metrics.invalidations += 1
        self._entries.clear()


class CachingSearchEngine:
    """A :class:`~repro.core.engine.ContextSearchEngine` wrapper that
    memoises collection statistics across queries.

    Composition rather than inheritance: the wrapper intercepts the
    engine's ``_resolve_statistics`` / ``_resolve_statistics_only``
    resolution by pre-filling from the cache and storing what the engine
    resolves.  Rankings are bit-identical to the uncached engine.
    """

    def __init__(self, engine, max_contexts: int = 128):
        self.engine = engine
        self.cache = StatisticsCache(max_contexts=max_contexts)
        self._seen_epoch = self._coherence_token()
        self._wrap()

    def _coherence_token(self):
        """The engine's full :class:`~repro.core.backend.VersionVector`
        when it exposes one (so catalog swaps invalidate too), else its
        bare epoch.  Opaque — only compared with ``!=``."""
        version = getattr(self.engine, "version", None)
        if version is not None:
            return version
        return getattr(self.engine, "epoch", 0)

    def _check_epoch(self) -> None:
        """Self-invalidate when the index has mutated underneath us.

        The engine's version vector moves on every post-commit document
        batch and on every catalog swap, so this closes the stale window
        even when the mutating path forgot to call :meth:`invalidate`
        explicitly.
        """
        token = self._coherence_token()
        if token != self._seen_epoch:
            self._seen_epoch = token
            self.cache.invalidate()

    def _wrap(self) -> None:
        inner_resolve = self.engine._resolve_statistics
        inner_resolve_only = self.engine._resolve_statistics_only

        def cached_resolve(query: ContextQuery, specs, report, *args, **kwargs):
            self._check_epoch()
            key = canonical_context_key(query.predicates)
            found, missing = self.cache.lookup(key, specs)
            if not missing:
                # Still need the unranked result set; the conjunction is
                # cheap (selective-first) relative to statistics.
                result_ids = self.engine.searcher.search_conjunction(
                    query.keywords, query.predicates, report.counter
                )
                report.resolution.path = "cache"
                return dict(found), result_ids
            values, result_ids = inner_resolve(query, specs, report, *args, **kwargs)
            self.cache.store(key, values)
            values.update(found)
            return values, result_ids

        def cached_resolve_only(query: ContextQuery, specs, report, *args, **kwargs):
            self._check_epoch()
            key = canonical_context_key(query.predicates)
            found, missing = self.cache.lookup(key, specs)
            if not missing:
                report.resolution.path = "cache"
                return dict(found)
            values = inner_resolve_only(query, specs, report, *args, **kwargs)
            self.cache.store(key, values)
            values.update(found)
            return values

        self.engine._resolve_statistics = cached_resolve
        self.engine._resolve_statistics_only = cached_resolve_only

    # -- delegation -------------------------------------------------------

    @property
    def epoch(self) -> int:
        return getattr(self.engine, "epoch", 0)

    def search(self, query, top_k: Optional[int] = None, path: str = "auto"):
        return self.engine.search(query, top_k=top_k, path=path)

    def search_conventional(self, query, top_k: Optional[int] = None):
        return self.engine.search_conventional(query, top_k=top_k)

    def search_disjunctive(self, query, top_k: int = 10, path: str = "auto"):
        return self.engine.search_disjunctive(query, top_k=top_k, path=path)

    def invalidate(self) -> None:
        """Forward to the cache; call after ``append_documents`` — or let
        :func:`repro.views.maintenance.maintain_catalog` call it by
        passing this engine (or its cache) in ``caches=``."""
        self.cache.invalidate()

    @property
    def metrics(self) -> CacheMetrics:
        return self.cache.metrics
