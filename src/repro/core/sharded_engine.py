"""Parallel query execution over a sharded index, bit-identical to serial.

The sharded engine runs every evaluation mode of
:class:`~repro.core.engine.ContextSearchEngine` as a two-phase
scatter-gather over the shards of a
:class:`~repro.index.sharded.ShardedInvertedIndex`:

1. **resolve** — each shard answers the query's collection-statistic
   specs over *its* sub-collection (views path when a per-shard catalog
   covers the context, straightforward plan otherwise) and stashes its
   local unranked result;
2. **merge** — the parent sums the partial aggregates (every supported
   statistic of Table 1 is additive over documents; the one non-additive
   statistic, ``utc``, is rejected up front);
3. **score** — the merged global statistics are broadcast back and every
   shard scores its stashed candidates with them.  Scores are pure
   functions of integer statistics and per-document values, so each
   document's score is the exact float the single-shard engine computes;
   the final sort on ``(-score, global docid)`` then reproduces the
   single-shard ranking including tie-breaks.

Disjunctive top-k additionally shares an adaptive threshold
(:class:`~repro.core.topk.SharedTopKThreshold`) across shards and hands
all shards the *global* per-term score bounds, so per-shard MaxScore
prunes identically to (and merges bit-identically with) the single-shard
scorer.

Three execution backends: ``serial`` (in-process loop), ``thread``
(pool; parallel I/O but GIL-bound for pure-python scan work), ``fork``
(one dedicated forked worker process per shard — true CPU parallelism;
the default where ``fork`` is available).  Backends never change
results, only wall-clock.

Known limitation: :class:`~repro.core.stats_cache.CachingSearchEngine`
wraps ``ContextSearchEngine`` internals and cannot wrap this engine;
sharded deployments should cache at a layer above ``search_many``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import EmptyContextError, QueryError, ReproError
from ..index.postings import CostCounter
from ..index.searcher import BooleanSearcher
from ..index.sharded import IndexShard, ShardedInvertedIndex
from ..views.catalog import ViewCatalog
from ..views.rewrite import compute_rare_term_statistics
from .engine import (
    BatchOutcome,
    BatchReport,
    ExecutionReport,
    SearchHit,
    SearchResults,
)
from .plan import StraightforwardPlan
from .query import ContextQuery, ContextSpecification, KeywordQuery, parse_query
from .ranking import DEFAULT_RANKING_FUNCTION, RankingFunction
from .statistics import (
    CARDINALITY,
    TERM_COUNT,
    UNIQUE_TERMS,
    CollectionStatistics,
    DocumentStatistics,
    QueryStatistics,
    StatisticSpec,
)
from .topk import MaxScoreScorer, PredicateMembership, SharedTopKThreshold

# A scored candidate crossing the shard boundary: (score, global docid,
# external id).  Sorting tuples of this shape on (-score, gid) is the
# single-shard (-score, doc_id) order because gid IS the single-shard
# internal docid.
_Hit = Tuple[float, int, str]


class ShardRuntime:
    """Everything one shard needs to evaluate its slice of a query.

    Lives on both sides of the process boundary: the parent builds the
    runtimes, and the fork backend's per-shard worker inherits them via
    the module registry.  Phase-1 calls stash the shard's local result
    set keyed by query id; the matching phase-2 call pops it — which is
    why the fork backend dedicates one worker process per shard (both
    phases of a shard must land in the same address space).
    """

    def __init__(
        self,
        shard: IndexShard,
        ranking: RankingFunction,
        catalog: Optional[ViewCatalog],
        use_skips: bool = True,
    ):
        self.shard_id = shard.shard_id
        self.index = shard.index
        self.global_ids = shard.global_ids
        self.ranking = ranking
        self.catalog = catalog
        self.searcher = BooleanSearcher(shard.index, use_skips=use_skips)
        self.plan = StraightforwardPlan(shard.index, use_skips=use_skips)
        self._stash: Dict[int, Tuple[Tuple[str, ...], List[int]]] = {}

    # -- phase 1: per-shard statistics ----------------------------------

    def resolve_many(self, tasks: Sequence[tuple]) -> List[tuple]:
        """Resolve statistics and stash the local conjunctive result.

        ``tasks``: ``(qid, keywords, predicates, specs)`` per query.
        Returns ``(qid, values, num_results, path, counter)``; an empty
        local context yields all-zero values (the additive identity) and
        an empty result — the *global* emptiness check happens after the
        merge, in the parent.
        """
        out = []
        for qid, keywords, predicates, specs in tasks:
            counter = CostCounter()
            query = _rebuild_query(keywords, predicates)
            try:
                values, result_ids, path = self._resolve(query, specs, counter)
            except EmptyContextError:
                values = {spec: 0 for spec in specs}
                result_ids = []
                path = "straightforward"
            self._stash[qid] = (tuple(keywords), result_ids)
            out.append((qid, values, len(result_ids), path, counter))
        return out

    def stats_many(self, tasks: Sequence[tuple]) -> List[tuple]:
        """Statistics only (no result stash) — disjunctive & diagnostics.

        ``tasks``: ``(qid, keywords, predicates, specs, use_views)``.
        Returns ``(qid, values, path, counter)``.
        """
        out = []
        for qid, keywords, predicates, specs, use_views in tasks:
            counter = CostCounter()
            query = _rebuild_query(keywords, predicates)
            try:
                if use_views:
                    values, path = self._resolve_only(query, specs, counter)
                else:
                    execution = self.plan.execute(query, specs, counter)
                    values, path = execution.statistic_values, "straightforward"
            except EmptyContextError:
                values = {spec: 0 for spec in specs}
                path = "straightforward"
            out.append((qid, values, path, counter))
        return out

    # -- phase 2: scoring with merged global statistics -----------------

    def score_many(self, tasks: Sequence[tuple]) -> List[tuple]:
        """Score the stashed results under merged statistics.

        ``tasks``: ``(qid, values, top_k)``; ``values=None`` means the
        query died in the merge (globally empty context) and the stash
        entry is just discarded.  Returns ``(qid, hits)`` with hits
        sorted ``(-score, gid)`` and truncated to ``top_k`` — any global
        top-k document is necessarily in its shard's local top-k, so
        truncation loses nothing.
        """
        out = []
        for qid, values, top_k in tasks:
            keywords, result_ids = self._stash.pop(qid, ((), []))
            if values is None:
                continue
            stats = CollectionStatistics.from_values(values)
            hits = self._score(keywords, result_ids, stats)
            if top_k is not None:
                hits = hits[:top_k]
            out.append((qid, hits))
        return out

    def conventional_many(self, tasks: Sequence[tuple]) -> List[tuple]:
        """Single-phase conventional baseline ``Q_t = Q_k ∪ P``.

        Whole-collection statistics do not depend on per-shard work, so
        the parent precomputes them and one dispatch both filters and
        scores.  ``tasks``: ``(qid, keywords, predicates, stats, top_k)``.
        Returns ``(qid, hits, num_results, counter)``.
        """
        out = []
        for qid, keywords, predicates, stats, top_k in tasks:
            counter = CostCounter()
            result_ids = self.searcher.search_conjunction(
                list(keywords), list(predicates), counter
            )
            hits = self._score(keywords, result_ids, stats)
            if top_k is not None:
                hits = hits[:top_k]
            out.append((qid, hits, len(result_ids), counter))
        return out

    def topk_many(
        self,
        tasks: Sequence[tuple],
        shared_by_qid: Optional[Dict[int, SharedTopKThreshold]] = None,
    ) -> List[tuple]:
        """Per-shard disjunctive MaxScore with globally shared bounds.

        ``tasks``: ``(qid, keywords, predicates, values, k, term_bounds)``.
        ``term_bounds`` are computed by the parent from *global* max tf, so
        every shard's scorer orders and prunes against the same bounds the
        single-shard scorer would.  ``shared_by_qid`` carries live
        :class:`SharedTopKThreshold` objects when shards run in the same
        address space (serial/thread backends); the fork backend omits it
        — threshold sharing is a pruning accelerator, never a correctness
        requirement.  Returns ``(qid, hits, counter)``.
        """
        out = []
        for qid, keywords, predicates, values, k, term_bounds in tasks:
            counter = CostCounter()
            if values is None:
                continue
            stats = CollectionStatistics.from_values(values)
            scorer = MaxScoreScorer(
                self.index,
                list(keywords),
                stats,
                self.ranking,
                context_filter=PredicateMembership(self.index, list(predicates)),
                term_bounds=term_bounds,
            )
            shared = shared_by_qid.get(qid) if shared_by_qid else None
            scored = scorer.top_k(k, counter, shared=shared)
            hits = [
                (
                    s.score,
                    self.global_ids[s.doc_id],
                    self.index.store.get(s.doc_id).external_id,
                )
                for s in scored
            ]
            out.append((qid, hits, counter))
        return out

    # -- internals ------------------------------------------------------

    def _resolve(
        self,
        query: ContextQuery,
        specs: Sequence[StatisticSpec],
        counter: CostCounter,
    ) -> Tuple[Dict[StatisticSpec, float], List[int], str]:
        """Mirror of ``ContextSearchEngine._resolve_statistics`` per shard."""
        if self.catalog is not None and len(self.catalog) > 0:
            values, unresolved, views_used = self.catalog.resolve(
                specs, query.context, counter
            )
            if views_used:
                if unresolved:
                    values.update(
                        compute_rare_term_statistics(
                            self.index, query, unresolved, counter
                        )
                    )
                result_ids = self.searcher.search_conjunction(
                    query.keywords, query.predicates, counter
                )
                return values, result_ids, "views"
        execution = self.plan.execute(query, specs, counter)
        return execution.statistic_values, execution.result_ids, "straightforward"

    def _resolve_only(
        self,
        query: ContextQuery,
        specs: Sequence[StatisticSpec],
        counter: CostCounter,
    ) -> Tuple[Dict[StatisticSpec, float], str]:
        if self.catalog is not None and len(self.catalog) > 0:
            values, unresolved, views_used = self.catalog.resolve(
                specs, query.context, counter
            )
            if views_used:
                if unresolved:
                    values.update(
                        compute_rare_term_statistics(
                            self.index, query, unresolved, counter
                        )
                    )
                return values, "views"
        execution = self.plan.execute(query, specs, counter)
        return execution.statistic_values, "straightforward"

    def _score(
        self,
        keywords: Sequence[str],
        result_ids: Sequence[int],
        stats: CollectionStatistics,
    ) -> List[_Hit]:
        """``ContextSearchEngine._score`` with global ids in the sort key."""
        query_stats = QueryStatistics.from_keywords(keywords)
        unique_keywords = list(dict.fromkeys(keywords))
        plists = {w: self.index.postings(w) for w in unique_keywords}
        hits: List[_Hit] = []
        for doc_id in result_ids:
            doc = self.index.store.get(doc_id)
            tfs = {w: (plists[w].tf_for(doc_id) or 0) for w in unique_keywords}
            doc_stats = DocumentStatistics(
                length=doc.length,
                unique_terms=doc.unique_terms,
                term_frequencies=tfs,
            )
            score = self.ranking.score(query_stats, doc_stats, stats)
            hits.append((score, self.global_ids[doc_id], doc.external_id))
        hits.sort(key=lambda hit: (-hit[0], hit[1]))
        return hits


def _rebuild_query(
    keywords: Sequence[str], predicates: Sequence[str]
) -> ContextQuery:
    """Reassemble an analysed query shipped across the shard boundary."""
    return ContextQuery(
        KeywordQuery(list(keywords)), ContextSpecification(list(predicates))
    )


# -- execution backends --------------------------------------------------------


class _SerialBackend:
    """Run every shard's slice in the calling thread (reference backend)."""

    name = "serial"
    shares_memory = True

    def __init__(self, runtimes: Sequence[ShardRuntime], max_workers=None):
        self._runtimes = list(runtimes)

    def map(self, method: str, payloads: Sequence[list], **kwargs) -> List[list]:
        return [
            getattr(runtime, method)(payload, **kwargs)
            for runtime, payload in zip(self._runtimes, payloads)
        ]

    def close(self) -> None:
        pass


class _ThreadBackend:
    """One pool thread per shard slice; shards share the parent's memory."""

    name = "thread"
    shares_memory = True

    def __init__(
        self, runtimes: Sequence[ShardRuntime], max_workers: Optional[int] = None
    ):
        self._runtimes = list(runtimes)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers or len(self._runtimes)
        )

    def map(self, method: str, payloads: Sequence[list], **kwargs) -> List[list]:
        futures = [
            self._pool.submit(getattr(runtime, method), payload, **kwargs)
            for runtime, payload in zip(self._runtimes, payloads)
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


# Fork-backend plumbing: workers inherit the parent's runtimes through this
# module-level registry, captured at fork time.  Entries are registered
# BEFORE any worker process exists and the runtimes' index state is
# immutable afterwards, so parent and children stay consistent; only the
# per-query stash diverges, and it lives exclusively in the worker.
_FORK_REGISTRY: Dict[int, List[ShardRuntime]] = {}
_FORK_KEYS = itertools.count()


def _fork_call(key: int, shard_id: int, method: str, payload: list) -> list:
    runtime = _FORK_REGISTRY[key][shard_id]
    return getattr(runtime, method)(payload)


def fork_available() -> bool:
    """Whether the copy-on-write fork backend can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


class _ForkBackend:
    """One dedicated forked worker process per shard.

    Dedicated (max_workers=1) executors give each shard task affinity:
    phase 1 and phase 2 of the same shard always execute in the same
    process, which the cross-phase stash requires.  Fork (not spawn)
    start: children get the built indexes by copy-on-write page sharing
    instead of pickling gigabytes of postings.
    """

    name = "fork"
    shares_memory = False

    def __init__(
        self, runtimes: Sequence[ShardRuntime], max_workers=None
    ):
        if not fork_available():
            raise QueryError("fork start method unavailable on this platform")
        self._key = next(_FORK_KEYS)
        _FORK_REGISTRY[self._key] = list(runtimes)
        context = multiprocessing.get_context("fork")
        self._pools = [
            ProcessPoolExecutor(max_workers=1, mp_context=context)
            for _ in runtimes
        ]

    def map(self, method: str, payloads: Sequence[list], **kwargs) -> List[list]:
        # kwargs carry live in-memory objects (shared thresholds) that
        # cannot cross a process boundary; callers never pass them to this
        # backend, and dropping them is always result-preserving.
        futures = [
            pool.submit(_fork_call, self._key, shard_id, method, payload)
            for shard_id, (pool, payload) in enumerate(zip(self._pools, payloads))
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)
        _FORK_REGISTRY.pop(self._key, None)


_BACKENDS = {
    "serial": _SerialBackend,
    "thread": _ThreadBackend,
    "fork": _ForkBackend,
}


def _pick_backend(executor: str):
    if executor == "auto":
        return _ForkBackend if fork_available() else _ThreadBackend
    cls = _BACKENDS.get(executor)
    if cls is None:
        raise QueryError(
            f"unknown executor {executor!r} (have auto, {sorted(_BACKENDS)})"
        )
    return cls


# -- the engine ----------------------------------------------------------------


class ShardedEngine:
    """Context-sensitive search over a sharded index, results bit-identical
    to :class:`~repro.core.engine.ContextSearchEngine` on the same corpus.

    ``catalogs`` (optional) is one :class:`ViewCatalog` per shard — see
    :func:`repro.views.sharding.materialize_sharded_catalogs`.  ``executor``
    selects the backend (``auto``/``serial``/``thread``/``fork``); call
    :meth:`close` (or use as a context manager) to release worker pools.
    """

    def __init__(
        self,
        sharded_index: ShardedInvertedIndex,
        ranking: Optional[RankingFunction] = None,
        catalogs: Optional[Sequence[Optional[ViewCatalog]]] = None,
        executor: str = "auto",
        max_workers: Optional[int] = None,
        use_skips: bool = True,
    ):
        if not sharded_index.committed:
            raise QueryError("all shards must be committed before searching")
        if catalogs is not None and len(catalogs) != sharded_index.num_shards:
            raise QueryError(
                f"{len(catalogs)} catalogs for {sharded_index.num_shards} shards"
            )
        self.sharded_index = sharded_index
        self.ranking = ranking if ranking is not None else DEFAULT_RANKING_FUNCTION
        self.runtimes = [
            ShardRuntime(
                shard,
                self.ranking,
                catalogs[i] if catalogs is not None else None,
                use_skips=use_skips,
            )
            for i, shard in enumerate(sharded_index.shards)
        ]
        self._backend = _pick_backend(executor)(self.runtimes, max_workers)
        self._global_tc_cache: Dict[str, int] = {}
        # Analyzers are configuration, identical across shards; shard 0's
        # stand in for the collection's.
        self._analyzer = sharded_index.shards[0].index.analyzer
        self._predicate_analyzer = sharded_index.shards[0].index.predicate_analyzer

    # -- lifecycle ------------------------------------------------------

    @property
    def executor_name(self) -> str:
        return self._backend.name

    def close(self) -> None:
        """Release backend worker pools (idempotent)."""
        self._backend.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- public API -----------------------------------------------------

    def search(
        self, query: Union[ContextQuery, str], top_k: Optional[int] = None
    ) -> SearchResults:
        """Context-sensitive ``Q_c = Q_k | P`` across all shards."""
        return self._single(query, top_k, "context")

    def search_conventional(
        self, query: Union[ContextQuery, str], top_k: Optional[int] = None
    ) -> SearchResults:
        """The conventional baseline ``Q_t = Q_k ∪ P`` across all shards."""
        return self._single(query, top_k, "conventional")

    def search_disjunctive(
        self, query: Union[ContextQuery, str], top_k: int = 10
    ) -> SearchResults:
        """OR-semantics context-sensitive top-k across all shards."""
        return self._single(query, top_k, "disjunctive")

    def search_many(
        self,
        queries: Iterable[Union[ContextQuery, str]],
        top_k: Optional[int] = None,
        mode: str = "context",
    ) -> BatchReport:
        """Evaluate a workload with one scatter-gather round per phase.

        The batch shape is what makes sharding pay at serving time: a
        batch of B queries costs two dispatches per shard (one per phase),
        not 2·B, so per-task overhead amortises across the workload.
        Outcomes come back in input order; per-query failures (empty
        context, stopword-only keywords, …) are recorded, never raised.
        """
        if mode not in ("context", "conventional", "disjunctive"):
            raise QueryError(f"unknown batch mode: {mode!r}")
        queries = list(queries)
        started = time.perf_counter()
        results = self._execute_batch(queries, top_k, mode)
        elapsed = time.perf_counter() - started
        outcomes = []
        for query, result in zip(queries, results):
            text = query if isinstance(query, str) else str(query)
            if isinstance(result, ReproError):
                outcomes.append(
                    BatchOutcome(
                        query=text, error=f"{type(result).__name__}: {result}"
                    )
                )
            else:
                outcomes.append(BatchOutcome(query=text, results=result))
        return BatchReport(
            outcomes=outcomes,
            mode=mode,
            workers=self.sharded_index.num_shards,
            elapsed_seconds=elapsed,
        )

    def context_statistics(
        self,
        context: Union[ContextSpecification, Sequence[str]],
        keywords: Sequence[str] = (),
    ) -> CollectionStatistics:
        """Merged global context statistics (straightforward plan, no views)."""
        if not isinstance(context, ContextSpecification):
            context = ContextSpecification(context)
        keywords = [self._analyze_keyword(w) for w in keywords] or ["__none__"]
        specs = self.ranking.required_collection_specs(keywords)
        self._check_additive(specs)
        tasks = [(0, tuple(keywords), tuple(context.predicates), tuple(specs), False)]
        shard_outputs = self._backend.map(
            "stats_many", [list(tasks)] * self.sharded_index.num_shards
        )
        merged = self._merge_values([out[0][1] for out in shard_outputs], specs)
        if self._cardinality_of(merged, specs) <= 0:
            raise EmptyContextError(f"context {context} matches no documents")
        return CollectionStatistics.from_values(merged)

    # -- batch execution internals --------------------------------------

    def _single(
        self, query: Union[ContextQuery, str], top_k: Optional[int], mode: str
    ) -> SearchResults:
        result = self._execute_batch([query], top_k, mode)[0]
        if isinstance(result, ReproError):
            raise result
        return result

    def _execute_batch(
        self,
        queries: Sequence[Union[ContextQuery, str]],
        top_k: Optional[int],
        mode: str,
    ) -> List[Union[SearchResults, ReproError]]:
        started = time.perf_counter()
        num_shards = self.sharded_index.num_shards
        results: List[Optional[Union[SearchResults, ReproError]]] = [None] * len(
            queries
        )

        # Parse + analyse in the parent; failures claim their slot now.
        analyzed: Dict[int, ContextQuery] = {}
        specs_by_qid: Dict[int, Tuple[StatisticSpec, ...]] = {}
        for qid, query in enumerate(queries):
            try:
                parsed = parse_query(query) if isinstance(query, str) else query
                analyzed_query = self._analyze(parsed)
                if mode == "disjunctive" and not self.ranking.decomposable:
                    raise QueryError(
                        f"ranking model {self.ranking.name!r} does not support "
                        "MaxScore pruning (non-zero score for absent terms)"
                    )
                if mode in ("context", "disjunctive"):
                    specs = tuple(
                        self.ranking.required_collection_specs(
                            analyzed_query.keywords
                        )
                    )
                    self._check_additive(specs)
                    specs_by_qid[qid] = specs
                analyzed[qid] = analyzed_query
            except ReproError as exc:
                results[qid] = exc

        if mode == "context":
            self._run_context(analyzed, specs_by_qid, top_k, results, num_shards)
        elif mode == "conventional":
            self._run_conventional(analyzed, top_k, results, num_shards)
        else:
            self._run_disjunctive(
                analyzed, specs_by_qid, top_k, results, num_shards
            )

        elapsed = time.perf_counter() - started
        for result in results:
            if isinstance(result, SearchResults):
                # Shards run interleaved, so per-query wall-clock is not
                # observable; every report carries the batch wall-clock.
                result.report.elapsed_seconds = elapsed
        return results  # type: ignore[return-value]

    def _run_context(self, analyzed, specs_by_qid, top_k, results, num_shards):
        phase1 = [
            (
                qid,
                tuple(query.keywords),
                tuple(query.predicates),
                specs_by_qid[qid],
            )
            for qid, query in analyzed.items()
        ]
        if not phase1:
            return
        shard_outputs = self._backend.map(
            "resolve_many", [list(phase1)] * num_shards
        )

        merged_values: Dict[int, Dict[StatisticSpec, float]] = {}
        reports: Dict[int, ExecutionReport] = {}
        result_sizes: Dict[int, int] = {}
        paths: Dict[int, set] = {}
        for qid, *_ in phase1:
            merged_values[qid] = {spec: 0 for spec in specs_by_qid[qid]}
            reports[qid] = ExecutionReport()
            result_sizes[qid] = 0
            paths[qid] = set()
        for output in shard_outputs:  # shard order: deterministic merges
            for qid, values, num_results, path, counter in output:
                merged = merged_values[qid]
                for spec, value in values.items():
                    merged[spec] += value
                result_sizes[qid] += num_results
                paths[qid].add(path)
                reports[qid].counter.merge(counter)

        phase2 = []
        for qid, query in analyzed.items():
            specs = specs_by_qid[qid]
            cardinality = self._cardinality_of(merged_values[qid], specs)
            if cardinality <= 0:
                results[qid] = EmptyContextError(
                    f"context {query.context} matches no documents"
                )
                phase2.append((qid, None, top_k))  # discard the stash
                continue
            reports[qid].context_size = cardinality
            reports[qid].result_size = result_sizes[qid]
            reports[qid].resolution.path = _merge_paths(paths[qid])
            phase2.append((qid, merged_values[qid], top_k))
        shard_outputs = self._backend.map("score_many", [list(phase2)] * num_shards)
        self._merge_hits(shard_outputs, analyzed, reports, top_k, results)

    def _run_conventional(self, analyzed, top_k, results, num_shards):
        tasks = []
        reports: Dict[int, ExecutionReport] = {}
        for qid, query in analyzed.items():
            stats = self._global_statistics(query.keywords)
            reports[qid] = ExecutionReport()
            reports[qid].resolution.path = "conventional"
            tasks.append(
                (qid, tuple(query.keywords), tuple(query.predicates), stats, top_k)
            )
        if not tasks:
            return
        shard_outputs = self._backend.map(
            "conventional_many", [list(tasks)] * num_shards
        )
        merged: Dict[int, List[_Hit]] = {qid: [] for qid in analyzed}
        for output in shard_outputs:
            for qid, hits, num_results, counter in output:
                merged[qid].extend(hits)
                reports[qid].result_size += num_results
                reports[qid].counter.merge(counter)
        for qid, query in analyzed.items():
            hits = sorted(merged[qid], key=lambda hit: (-hit[0], hit[1]))
            if top_k is not None:
                hits = hits[:top_k]
            results[qid] = SearchResults(
                hits=[
                    SearchHit(doc_id=gid, external_id=ext, score=score)
                    for score, gid, ext in hits
                ],
                report=reports[qid],
            )

    def _run_disjunctive(self, analyzed, specs_by_qid, top_k, results, num_shards):
        k = top_k if top_k is not None else 10
        phase1 = [
            (
                qid,
                tuple(query.keywords),
                tuple(query.predicates),
                specs_by_qid[qid],
                True,
            )
            for qid, query in analyzed.items()
        ]
        if not phase1:
            return
        shard_outputs = self._backend.map("stats_many", [list(phase1)] * num_shards)

        merged_values: Dict[int, Dict[StatisticSpec, float]] = {}
        reports: Dict[int, ExecutionReport] = {}
        paths: Dict[int, set] = {}
        for qid, _, _, specs, _ in phase1:
            merged_values[qid] = {spec: 0 for spec in specs}
            reports[qid] = ExecutionReport()
            paths[qid] = set()
        for output in shard_outputs:
            for qid, values, path, counter in output:
                merged = merged_values[qid]
                for spec, value in values.items():
                    merged[spec] += value
                paths[qid].add(path)
                reports[qid].counter.merge(counter)

        phase2 = []
        shared_by_qid: Dict[int, SharedTopKThreshold] = {}
        for qid, query in analyzed.items():
            specs = specs_by_qid[qid]
            cardinality = self._cardinality_of(merged_values[qid], specs)
            if cardinality <= 0:
                results[qid] = EmptyContextError(
                    f"context {query.context} matches no documents"
                )
                continue
            reports[qid].context_size = cardinality
            reports[qid].resolution.path = _merge_paths(paths[qid])
            stats = CollectionStatistics.from_values(merged_values[qid])
            bounds = self._term_bounds(query.keywords, stats)
            shared_by_qid[qid] = SharedTopKThreshold(k)
            phase2.append(
                (
                    qid,
                    tuple(query.keywords),
                    tuple(query.predicates),
                    merged_values[qid],
                    k,
                    bounds,
                )
            )
        if not phase2:
            return
        kwargs = (
            {"shared_by_qid": shared_by_qid}
            if self._backend.shares_memory
            else {}
        )
        shard_outputs = self._backend.map(
            "topk_many", [list(phase2)] * num_shards, **kwargs
        )
        merged_hits: Dict[int, List[_Hit]] = {entry[0]: [] for entry in phase2}
        for output in shard_outputs:
            for qid, hits, counter in output:
                merged_hits[qid].extend(hits)
                reports[qid].counter.merge(counter)
        for qid, hits in merged_hits.items():
            hits = sorted(hits, key=lambda hit: (-hit[0], hit[1]))[:k]
            report = reports[qid]
            report.result_size = len(hits)
            results[qid] = SearchResults(
                hits=[
                    SearchHit(doc_id=gid, external_id=ext, score=score)
                    for score, gid, ext in hits
                ],
                report=report,
            )

    def _merge_hits(self, shard_outputs, analyzed, reports, top_k, results):
        merged: Dict[int, List[_Hit]] = {
            qid: [] for qid in analyzed if not isinstance(results[qid], ReproError)
        }
        for output in shard_outputs:
            for qid, hits in output:
                if qid in merged:
                    merged[qid].extend(hits)
        for qid, hits in merged.items():
            hits = sorted(hits, key=lambda hit: (-hit[0], hit[1]))
            if top_k is not None:
                hits = hits[:top_k]
            results[qid] = SearchResults(
                hits=[
                    SearchHit(doc_id=gid, external_id=ext, score=score)
                    for score, gid, ext in hits
                ],
                report=reports[qid],
            )

    # -- merge helpers ---------------------------------------------------

    @staticmethod
    def _merge_values(
        per_shard: Sequence[Dict[StatisticSpec, float]],
        specs: Sequence[StatisticSpec],
    ) -> Dict[StatisticSpec, float]:
        merged: Dict[StatisticSpec, float] = {spec: 0 for spec in specs}
        for values in per_shard:
            for spec, value in values.items():
                merged[spec] += value
        return merged

    @staticmethod
    def _cardinality_of(
        values: Dict[StatisticSpec, float], specs: Sequence[StatisticSpec]
    ) -> int:
        for spec in specs:
            if spec.kind == CARDINALITY:
                return int(values[spec])
        return 0

    @staticmethod
    def _check_additive(specs: Sequence[StatisticSpec]) -> None:
        """Reject the one Table 1 statistic that does not sum over shards.

        ``utc(D_P)`` is a distinct-count: shard vocabularies overlap, so
        per-shard values cannot be merged exactly without shipping the
        vocabularies themselves.  No built-in ranking model requests it;
        a custom model that does must run on the single-shard engine.
        """
        for spec in specs:
            if spec.kind == UNIQUE_TERMS:
                raise QueryError(
                    "unique-term count (utc) is not additive across shards; "
                    "use the single-shard engine for rankings that need it"
                )

    def _term_bounds(
        self, keywords: Sequence[str], stats: CollectionStatistics
    ) -> Dict[str, float]:
        """Global per-term score upper bounds for every shard's scorer.

        Computed from the collection-wide ``max_tf`` so the bounds equal
        the single-shard scorer's exactly; identical bounds give every
        shard the same term ordering, hence the same per-document float
        summation order, hence bit-identical scores.
        """
        query_stats = QueryStatistics.from_keywords(keywords)
        bounds: Dict[str, float] = {}
        for term in dict.fromkeys(keywords):
            max_tf = self.sharded_index.max_tf(term)
            if max_tf > 0:
                bounds[term] = self.ranking.term_upper_bound(
                    term, max_tf, query_stats, stats
                )
        return bounds

    def _global_statistics(self, keywords: Sequence[str]) -> CollectionStatistics:
        """Whole-collection ``S_c(D)`` via exact per-shard sums."""
        df = {w: self.sharded_index.document_frequency(w) for w in keywords}
        wants_tc = any(
            spec.kind == TERM_COUNT
            for spec in self.ranking.required_collection_specs(keywords)
        )
        tc = {w: self._global_tc(w) for w in keywords} if wants_tc else {}
        return CollectionStatistics(
            cardinality=self.sharded_index.num_docs,
            total_length=self.sharded_index.total_length,
            df=df,
            tc=tc,
        )

    def _global_tc(self, term: str) -> int:
        cached = self._global_tc_cache.get(term)
        if cached is None:
            cached = self.sharded_index.term_count(term)
            self._global_tc_cache[term] = cached
        return cached

    # -- analysis (mirrors ContextSearchEngine) --------------------------

    def _analyze_keyword(self, keyword: str) -> str:
        analyzed = self._analyzer.analyze_query_term(keyword)
        if analyzed is None:
            raise QueryError(
                f"keyword {keyword!r} was removed by analysis (stopword?)"
            )
        return analyzed

    def _analyze(self, query: ContextQuery) -> ContextQuery:
        keywords = [self._analyze_keyword(w) for w in query.keywords]
        predicates = []
        for m in query.predicates:
            analyzed = self._predicate_analyzer.analyze_query_term(m)
            if analyzed is None:
                raise QueryError(f"empty context predicate: {m!r}")
            predicates.append(analyzed)
        return ContextQuery(
            KeywordQuery(keywords), ContextSpecification(predicates)
        )


def _merge_paths(paths: set) -> str:
    """Collapse per-shard resolution paths into one report label."""
    if paths == {"views"}:
        return "sharded-views"
    if paths == {"straightforward"} or not paths:
        return "sharded-straightforward"
    return "sharded-mixed"
