"""Parallel query execution over a sharded index, bit-identical to serial.

The sharded engine runs every evaluation mode of
:class:`~repro.core.engine.ContextSearchEngine` as a two-phase
scatter-gather over the shards of a
:class:`~repro.index.sharded.ShardedInvertedIndex`.  Sharding is a
*partitioned execution strategy over the shared planner stack*, not a
separate engine: each :class:`ShardRuntime` owns the same physical
operators (:mod:`repro.core.operators`) over its sub-index and its own
:class:`~repro.core.optimizer.Optimizer` over its per-shard catalog, so
every shard makes a local cost-based views-vs-straightforward choice and
the parent merges with :class:`~repro.core.operators.StatsMerge`:

1. **resolve** — each shard plans and answers the query's
   collection-statistic specs over *its* sub-collection and stashes its
   local unranked result;
2. **merge** — the parent sums the partial aggregates (every supported
   statistic of Table 1 is additive over documents; the one non-additive
   statistic, ``utc``, is rejected up front);
3. **score** — the merged global statistics are broadcast back and every
   shard scores its stashed candidates with them through the one shared
   scoring loop (:mod:`repro.core.scoring`).  Scores are pure functions
   of integer statistics and per-document values, so each document's
   score is the exact float the single-shard engine computes; the final
   sort on ``(-score, global docid)`` then reproduces the single-shard
   ranking including tie-breaks.

Every report carries the per-shard breakdown
(:class:`~repro.core.report.ShardReport` — chosen path, predicted cost,
observed counter per shard) and an aggregate
:class:`~repro.core.optimizer.ExplainedPlan` whose ``shard_choices``
record each shard's decision (``cli explain`` prints both).

Disjunctive top-k additionally shares an adaptive threshold
(:class:`~repro.core.topk.SharedTopKThreshold`) across shards and hands
all shards the *global* per-term score bounds, so per-shard MaxScore
prunes identically to (and merges bit-identically with) the single-shard
scorer.

Three execution backends: ``serial`` (in-process loop), ``thread``
(pool; parallel I/O but GIL-bound for pure-python scan work), ``fork``
(one dedicated forked worker process per shard — true CPU parallelism;
the default where ``fork`` is available).  Backends never change
results, only wall-clock.

Known limitation: :class:`~repro.core.stats_cache.CachingSearchEngine`
wraps ``ContextSearchEngine`` internals and cannot wrap this engine;
sharded deployments should cache at a layer above ``search_many``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import EmptyContextError, QueryError, ReproError
from ..index.postings import CostCounter
from ..index.sharded import IndexShard, ShardedInvertedIndex
from ..views.catalog import ViewCatalog
from .backend import VersionAuthority, VersionVector
from .engine import (
    BatchOutcome,
    BatchReport,
    ExecutionReport,
    SearchHit,
    SearchResults,
)
from .logical import MODE_CONTEXT, MODE_CONVENTIONAL, MODE_DISJUNCTIVE, compile_query
from .operators import (
    ExecutionContext,
    MaxScoreTopK,
    SelectiveFirstIntersect,
    StatsMerge,
    StraightforwardResolve,
    ViewScan,
)
from .optimizer import (
    FORCEABLE_PATHS,
    PATH_AUTO,
    PATH_PER_SHARD,
    PATH_VIEWS,
    ExplainedPlan,
    Optimizer,
    PathCandidate,
    selective_first_bound,
)
from .query import ContextQuery, ContextSpecification, KeywordQuery, parse_query
from .ranking import DEFAULT_RANKING_FUNCTION, RankingFunction
from .report import ShardReport
from .scoring import rank_candidates, score_candidates
from .statistics import (
    TERM_COUNT,
    CollectionStatistics,
    QueryStatistics,
    StatisticSpec,
)
from .topk import SharedTopKThreshold

# A scored candidate crossing the shard boundary: (score, global docid,
# external id).  Sorting tuples of this shape on (-score, gid) is the
# single-shard (-score, doc_id) order because gid IS the single-shard
# internal docid.
_Hit = Tuple[float, int, str]


class ShardRuntime:
    """Everything one shard needs to evaluate its slice of a query.

    One planner stack per shard: the runtime's :class:`Optimizer` plans
    over the shard's sub-index and per-shard catalog, and the physical
    operators it drives are the same classes the flat engine drives —
    there is no shard-specific resolution or scoring code.

    Lives on both sides of the process boundary: the parent builds the
    runtimes, and the fork backend's per-shard worker inherits them via
    the module registry.  Phase-1 calls stash the shard's local result
    set keyed by query id; the matching phase-2 call pops it — which is
    why the fork backend dedicates one worker process per shard (both
    phases of a shard must land in the same address space).
    """

    def __init__(
        self,
        shard: IndexShard,
        ranking: RankingFunction,
        catalog: Optional[ViewCatalog],
        use_skips: bool = True,
    ):
        from ..views.handle import CatalogHandle

        self.shard_id = shard.shard_id
        self.index = shard.index
        self.global_ids = shard.global_ids
        self.ranking = ranking
        # One swappable handle per shard, shared by this runtime's
        # optimizer and view-scan operator: the parent's catalog hot-swap
        # retargets both with a single assignment.
        self.catalog_handle = CatalogHandle.ensure(catalog)
        self.optimizer = Optimizer(shard.index, self.catalog_handle)
        self._op_conjunction = SelectiveFirstIntersect(
            shard.index, use_skips=use_skips
        )
        self._op_view_scan = ViewScan(
            self.catalog_handle, shard.index, use_skips=use_skips
        )
        self._op_straightforward = StraightforwardResolve(
            shard.index, use_skips=use_skips
        )
        self._op_topk = MaxScoreTopK(shard.index, ranking)
        # Back-compat handles (diagnostics and older call sites).
        self.searcher = self._op_conjunction.searcher
        self.plan = self._op_straightforward.plan
        self._stash: Dict[int, Tuple[Tuple[str, ...], List[int]]] = {}

    @property
    def catalog(self) -> Optional[ViewCatalog]:
        """This shard's current catalog, read through its handle."""
        return self.catalog_handle.catalog

    # -- phase 1: per-shard statistics ----------------------------------

    def resolve_many(self, tasks: Sequence[tuple]) -> List[tuple]:
        """Plan, resolve statistics, and stash the local conjunctive result.

        ``tasks``: ``(qid, keywords, predicates, specs, force)`` per
        query (``force`` pins the path shard-locally when feasible).
        Returns ``(qid, values, num_results, path, predicted, counter)``;
        an empty local context yields all-zero values (the additive
        identity) and an empty result — the *global* emptiness check
        happens after the merge, in the parent.
        """
        out = []
        for qid, keywords, predicates, specs, force in tasks:
            counter = CostCounter()
            ctx = ExecutionContext(counter=counter)
            query = _rebuild_query(keywords, predicates)
            plan = self._plan(query, specs, MODE_CONTEXT, force)
            try:
                values, result_ids = self._execute_resolution(
                    ctx, plan, query, specs
                )
                path = ctx.resolution.path
            except EmptyContextError:
                values = StatsMerge.zero(specs)
                result_ids = []
                path = "straightforward"
            self._stash[qid] = (tuple(keywords), result_ids)
            out.append(
                (qid, values, len(result_ids), path, plan.predicted_cost, counter)
            )
        return out

    def stats_many(self, tasks: Sequence[tuple]) -> List[tuple]:
        """Statistics only (no result stash) — disjunctive & diagnostics.

        ``tasks``: ``(qid, keywords, predicates, specs, use_views, force)``
        (``use_views=False`` bypasses the optimizer entirely: the
        straightforward plan is the ground truth diagnostics compare
        views against).  Returns ``(qid, values, path, predicted, counter)``.
        """
        out = []
        for qid, keywords, predicates, specs, use_views, force in tasks:
            counter = CostCounter()
            ctx = ExecutionContext(counter=counter)
            query = _rebuild_query(keywords, predicates)
            predicted = 0
            try:
                if use_views:
                    plan = self._plan(query, specs, MODE_DISJUNCTIVE, force)
                    predicted = plan.predicted_cost
                    values, _ = self._execute_resolution(
                        ctx, plan, query, specs, want_result=False
                    )
                    path = ctx.resolution.path
                else:
                    execution = self.plan.execute(query, specs, counter)
                    values, path = execution.statistic_values, "straightforward"
            except EmptyContextError:
                values = StatsMerge.zero(specs)
                path = "straightforward"
            out.append((qid, values, path, predicted, counter))
        return out

    # -- phase 2: scoring with merged global statistics -----------------

    def score_many(self, tasks: Sequence[tuple]) -> List[tuple]:
        """Score the stashed results under merged statistics.

        ``tasks``: ``(qid, values, top_k)``; ``values=None`` means the
        query died in the merge (globally empty context) and the stash
        entry is just discarded.  Returns ``(qid, hits)`` with hits
        sorted ``(-score, gid)`` and truncated to ``top_k`` — any global
        top-k document is necessarily in its shard's local top-k, so
        truncation loses nothing.
        """
        out = []
        for qid, values, top_k in tasks:
            keywords, result_ids = self._stash.pop(qid, ((), []))
            if values is None:
                continue
            stats = CollectionStatistics.from_values(values)
            hits = self._score(keywords, result_ids, stats, top_k)
            out.append((qid, hits))
        return out

    # -- stateless variants (the wire path) ------------------------------

    def resolve_stateless(
        self,
        qid: int,
        keywords: Tuple[str, ...],
        predicates: Tuple[str, ...],
        specs: Tuple[StatisticSpec, ...],
        force: Optional[str],
    ) -> Tuple[tuple, List[int]]:
        """One phase-1 resolution with the local result *returned*, not
        stashed.  The cluster's shard workers use this shape: candidates
        travel to the router and back, so phase 2 can land on any
        replica of the group (replicas are bit-identical copies, so
        local docids agree) — failover between phases is then trivially
        correct, where the in-process stash requires process affinity.
        """
        out = self.resolve_many([(qid, keywords, predicates, specs, force)])[0]
        _, result_ids = self._stash.pop(qid)
        return out, list(result_ids)

    def score_stateless(
        self,
        keywords: Sequence[str],
        result_ids: Sequence[int],
        values: Dict[StatisticSpec, float],
        top_k: Optional[int],
    ) -> List[_Hit]:
        """Phase-2 scoring for candidates shipped with the task."""
        stats = CollectionStatistics.from_values(values)
        return self._score(keywords, result_ids, stats, top_k)

    def conventional_many(self, tasks: Sequence[tuple]) -> List[tuple]:
        """Single-phase conventional baseline ``Q_t = Q_k ∪ P``.

        Whole-collection statistics do not depend on per-shard work, so
        the parent precomputes them and one dispatch both filters and
        scores.  ``tasks``: ``(qid, keywords, predicates, stats, top_k)``.
        Returns ``(qid, hits, num_results, predicted, counter)``.
        """
        out = []
        for qid, keywords, predicates, stats, top_k in tasks:
            counter = CostCounter()
            ctx = ExecutionContext(counter=counter)
            predicted = selective_first_bound(self.index, keywords, predicates)
            result_ids = self._op_conjunction.run(
                ctx, list(keywords), list(predicates)
            )
            hits = self._score(keywords, result_ids, stats, top_k)
            out.append((qid, hits, len(result_ids), predicted, counter))
        return out

    def topk_many(
        self,
        tasks: Sequence[tuple],
        shared_by_qid: Optional[Dict[int, SharedTopKThreshold]] = None,
    ) -> List[tuple]:
        """Per-shard disjunctive MaxScore with globally shared bounds.

        ``tasks``: ``(qid, keywords, predicates, values, k, term_bounds,
        block_max)``.  ``term_bounds`` are computed by the parent from
        *global* max tf, so every shard's scorer orders and prunes
        against the same bounds the single-shard scorer would; with
        ``block_max`` each shard additionally derives per-block bounds
        from its local block max-tf metadata (capped by the global term
        bounds — a pure local pruning accelerator).  ``shared_by_qid``
        carries live :class:`SharedTopKThreshold` objects when shards
        run in the same address space (serial/thread backends); the fork
        backend omits it — threshold sharing is a pruning accelerator,
        never a correctness requirement.  Returns ``(qid, hits, counter,
        topk_diag)`` with ``topk_diag`` the shard's
        :class:`~repro.core.topk.TopKDiagnostics` as a plain dict.
        """
        from .topk import TopKDiagnostics

        out = []
        for qid, keywords, predicates, values, k, term_bounds, block_max in tasks:
            counter = CostCounter()
            ctx = ExecutionContext(counter=counter)
            if values is None:
                continue
            stats = CollectionStatistics.from_values(values)
            shared = shared_by_qid.get(qid) if shared_by_qid else None
            diagnostics = TopKDiagnostics()
            scored = self._op_topk.run(
                ctx,
                keywords,
                predicates,
                stats,
                k,
                term_bounds=term_bounds,
                shared=shared,
                diagnostics=diagnostics,
                block_max=block_max,
            )
            hits = [
                (
                    s.score,
                    self.global_ids[s.doc_id],
                    self.index.store.get(s.doc_id).external_id,
                )
                for s in scored
            ]
            out.append((qid, hits, counter, diagnostics.to_dict()))
        return out

    # -- internals ------------------------------------------------------

    def _plan(
        self,
        query: ContextQuery,
        specs: Sequence[StatisticSpec],
        mode: str,
        force: Optional[str],
    ) -> ExplainedPlan:
        """Shard-local path choice.

        A forced path that is infeasible on *this* shard (its catalog
        may cover less than a sibling's) falls back to cost-based choice
        rather than failing the whole batch — the parent has already
        validated that the force is globally satisfiable, and per-shard
        fallback never changes results.
        """
        try:
            return self.optimizer.plan(query, specs, mode=mode, force=force)
        except QueryError:
            if force in (None, PATH_AUTO):
                raise
            return self.optimizer.plan(query, specs, mode=mode)

    def _execute_resolution(
        self,
        ctx: ExecutionContext,
        plan: ExplainedPlan,
        query: ContextQuery,
        specs: Sequence[StatisticSpec],
        want_result: bool = True,
    ) -> Tuple[Dict[StatisticSpec, float], List[int]]:
        """Run the planned path through the shared operators."""
        if plan.chosen == PATH_VIEWS:
            chosen = plan.candidate(PATH_VIEWS)
            values = self._op_view_scan.run(
                ctx, query, specs, usable=chosen.assignment if chosen else None
            )
            if values is not None:
                result_ids = (
                    self._op_conjunction.run(
                        ctx, query.keywords, query.predicates
                    )
                    if want_result
                    else []
                )
                return values, result_ids
        execution = self._op_straightforward.run(ctx, query, specs)
        return execution.statistic_values, execution.result_ids

    def _score(
        self,
        keywords: Sequence[str],
        result_ids: Sequence[int],
        stats: CollectionStatistics,
        top_k: Optional[int],
    ) -> List[_Hit]:
        """The shared scoring loop with global ids in the sort key."""
        scored = score_candidates(
            self.index, self.ranking, list(keywords), result_ids, stats
        )
        return rank_candidates(
            [
                (score, self.global_ids[doc_id], ext)
                for doc_id, score, ext in scored
            ],
            top_k,
        )


def _rebuild_query(
    keywords: Sequence[str], predicates: Sequence[str]
) -> ContextQuery:
    """Reassemble an analysed query shipped across the shard boundary."""
    return ContextQuery(
        KeywordQuery(list(keywords)), ContextSpecification(list(predicates))
    )


# -- transport-agnostic merge --------------------------------------------------


class _QueryMerge:
    """Per-query accumulation state inside a :class:`ShardMergePlan`."""

    __slots__ = (
        "query", "specs", "values", "report", "paths", "result_size", "hits",
    )

    def __init__(self, query, specs, values, report):
        self.query = query
        self.specs = specs
        self.values = values
        self.report = report
        self.paths: set = set()
        self.result_size = 0
        self.hits: List[_Hit] = []


class ShardMergePlan:
    """Everything rank-affecting about merging per-shard scatter output.

    Both gather transports drive one of these per batch: the in-process
    :class:`ShardedEngine` backends feed it runtime output tuples, and
    the cluster router (:mod:`repro.service.cluster`) feeds it decoded
    worker frames.  Additive :class:`StatsMerge` accumulation, the
    global context-emptiness check, global per-term score bounds, the
    shared top-k threshold construction, and the final ``(-score, gid)``
    rank all live here — so the local and over-the-wire paths cannot
    drift apart: identical shard outputs merge to bit-identical
    rankings regardless of transport.

    The caller owns dispatch and failure bookkeeping; this object owns
    merge state keyed by query id.  Calls per query, by mode:

    - context: ``add_query`` → ``add_resolution``\\* → ``complete_resolution``
      → ``add_hits``\\* → ``finish``
    - conventional: ``add_query`` → ``add_conventional``\\* → ``finish``
    - disjunctive: ``add_query`` → ``add_resolution``\\* →
      ``complete_resolution`` → ``term_bounds`` → ``add_topk``\\* → ``finish``

    Shard outputs must be fed in ascending shard order (both transports
    gather everything, then fold 0..N-1) so reports are deterministic;
    the merged statistics are integer sums and the final sort key is
    total, so rankings do not depend on fold order.
    """

    def __init__(
        self,
        ranking: RankingFunction,
        mode: str,
        top_k: Optional[int],
        forced: bool = False,
    ):
        if mode not in (MODE_CONTEXT, MODE_CONVENTIONAL, MODE_DISJUNCTIVE):
            raise QueryError(f"unknown batch mode: {mode!r}")
        self.ranking = ranking
        self.mode = mode
        # Disjunctive top-k has no "all results" shape; default k=10
        # exactly as the single-shard engine does.
        self.top_k = (
            (10 if top_k is None else top_k)
            if mode == MODE_DISJUNCTIVE
            else top_k
        )
        self.forced = forced
        self._queries: Dict[int, _QueryMerge] = {}

    # -- registration ----------------------------------------------------

    def add_query(
        self, qid: int, query: ContextQuery
    ) -> Tuple[StatisticSpec, ...]:
        """Register one analysed query and return its additive spec tuple.

        Raises :class:`QueryError` for statistic specs that cannot merge
        additively and for disjunctive mode under a non-decomposable
        ranking model — the same validation whichever transport runs it.
        """
        if self.mode == MODE_DISJUNCTIVE and not self.ranking.decomposable:
            raise QueryError(
                f"ranking model {self.ranking.name!r} does not support "
                "MaxScore pruning (non-zero score for absent terms)"
            )
        specs: Tuple[StatisticSpec, ...] = ()
        if self.mode != MODE_CONVENTIONAL:
            specs = tuple(
                self.ranking.required_collection_specs(query.keywords)
            )
            StatsMerge.check_additive(specs)
        report = ExecutionReport(per_shard=[])
        spec_list = list(specs)
        mode, top_k = self.mode, self.top_k
        report.plan = ExplainedPlan(
            logical=lambda: compile_query(query, spec_list, mode, top_k),
            candidates=[PathCandidate(PATH_PER_SHARD, True, 0)],
            chosen=PATH_PER_SHARD,
            forced=self.forced,
            shard_choices=[],
        )
        report.plan.actual = report.counter
        if self.mode == MODE_CONVENTIONAL:
            report.resolution.path = "conventional"
        self._queries[qid] = _QueryMerge(
            query, specs, StatsMerge.zero(specs), report
        )
        return specs

    def specs(self, qid: int) -> Tuple[StatisticSpec, ...]:
        return self._queries[qid].specs

    def query(self, qid: int) -> ContextQuery:
        return self._queries[qid].query

    # -- phase 1: additive statistics ------------------------------------

    def add_resolution(
        self,
        qid: int,
        shard_id: int,
        values: Dict[StatisticSpec, float],
        path: str,
        predicted: int,
        counter: CostCounter,
        num_results: int = 0,
    ) -> None:
        """Fold one shard's phase-1 slice: partial aggregates + report."""
        state = self._queries[qid]
        StatsMerge.accumulate(state.values, values)
        state.result_size += num_results
        state.paths.add(path)
        self._record_shard(
            state.report, shard_id, path, predicted, num_results, counter
        )

    def complete_resolution(self, qid: int) -> Optional[EmptyContextError]:
        """The global emptiness check, after every shard has reported.

        Returns the :class:`EmptyContextError` the caller should record
        (a locally empty shard contributes the additive identity, so
        only the *merged* cardinality decides), or ``None`` with the
        report's context size and resolution path filled in.
        """
        state = self._queries[qid]
        cardinality = StatsMerge.cardinality_of(state.values, state.specs)
        if cardinality <= 0:
            return EmptyContextError(
                f"context {state.query.context} matches no documents"
            )
        state.report.context_size = cardinality
        if self.mode == MODE_CONTEXT:
            state.report.result_size = state.result_size
        state.report.resolution.path = _merge_paths(state.paths)
        return None

    def merged_values(self, qid: int) -> Dict[StatisticSpec, float]:
        """The merged additive statistic values (broadcast in phase 2)."""
        return self._queries[qid].values

    def merged_statistics(self, qid: int) -> CollectionStatistics:
        return CollectionStatistics.from_values(self._queries[qid].values)

    def term_bounds(self, qid: int, max_tf_of) -> Dict[str, float]:
        """Global per-term score upper bounds for every shard's scorer.

        ``max_tf_of(term)`` must return the *collection-wide* max term
        frequency (the sharded index's accessor locally; the max over
        per-shard maxima at the router — the same integer).  Identical
        bounds give every shard the same term ordering, hence the same
        per-document float summation order, hence bit-identical scores.
        """
        state = self._queries[qid]
        stats = CollectionStatistics.from_values(state.values)
        query_stats = QueryStatistics.from_keywords(state.query.keywords)
        bounds: Dict[str, float] = {}
        for term in dict.fromkeys(state.query.keywords):
            max_tf = max_tf_of(term)
            if max_tf > 0:
                bounds[term] = self.ranking.term_upper_bound(
                    term, max_tf, query_stats, stats
                )
        return bounds

    def shared_threshold(self) -> SharedTopKThreshold:
        """A live cross-shard threshold (same-address-space gathers only;
        a pruning accelerator, never a correctness requirement)."""
        return SharedTopKThreshold(self.top_k if self.top_k else 10)

    @staticmethod
    def merge_collection_stats(parts: Sequence[dict]) -> CollectionStatistics:
        """Exact additive merge of per-shard whole-collection statistics
        (conventional mode).  ``parts`` hold ``num_docs``,
        ``total_length``, and per-term ``df``/``tc`` integer maps; sums
        over shards equal the single-shard accessors exactly."""
        df: Dict[str, int] = {}
        tc: Dict[str, int] = {}
        num_docs = 0
        total_length = 0
        for part in parts:
            num_docs += int(part["num_docs"])
            total_length += int(part["total_length"])
            for term, count in part.get("df", {}).items():
                df[term] = df.get(term, 0) + int(count)
            for term, count in part.get("tc", {}).items():
                tc[term] = tc.get(term, 0) + int(count)
        return CollectionStatistics(
            cardinality=num_docs, total_length=total_length, df=df, tc=tc
        )

    # -- phase 2: scored candidates --------------------------------------

    def add_hits(self, qid: int, hits: Sequence[_Hit]) -> None:
        """Context mode: one shard's scored candidates (report already
        folded in phase 1)."""
        self._queries[qid].hits.extend(hits)

    def add_conventional(
        self,
        qid: int,
        shard_id: int,
        hits: Sequence[_Hit],
        num_results: int,
        predicted: int,
        counter: CostCounter,
    ) -> None:
        """Conventional mode's single phase: hits + per-shard report."""
        state = self._queries[qid]
        state.hits.extend(hits)
        state.report.result_size += num_results
        self._record_shard(
            state.report, shard_id, "conventional", predicted, num_results,
            counter,
        )

    def add_topk(
        self,
        qid: int,
        shard_id: int,
        hits: Sequence[_Hit],
        counter: CostCounter,
        topk_diag: dict,
        block_max: bool,
    ) -> None:
        """Disjunctive phase 2: per-shard top-k hits + summed diagnostics."""
        state = self._queries[qid]
        state.hits.extend(hits)
        report = state.report
        report.counter.merge(counter)
        report.per_shard[shard_id].counter.merge(counter)
        report.per_shard[shard_id].result_size += len(hits)
        if report.topk is None:
            report.topk = dict(topk_diag, block_max=block_max)
        else:
            for key, value in topk_diag.items():
                report.topk[key] += value

    def finish(self, qid: int) -> SearchResults:
        """Rank the merged candidates — the single sort both transports
        share: ``(-score, gid)`` reproduces single-shard tie-breaks."""
        state = self._queries.pop(qid)
        hits = rank_candidates(state.hits, self.top_k)
        if self.mode == MODE_DISJUNCTIVE:
            state.report.result_size = len(hits)
        return SearchResults(
            hits=[
                SearchHit(doc_id=gid, external_id=ext, score=score)
                for score, gid, ext in hits
            ],
            report=state.report,
        )

    # -- internals -------------------------------------------------------

    @staticmethod
    def _record_shard(
        report: ExecutionReport,
        shard_id: int,
        path: str,
        predicted: int,
        num_results: int,
        counter: CostCounter,
    ) -> None:
        """Fold one shard's slice into the parent report and plan."""
        report.counter.merge(counter)
        report.per_shard.append(
            ShardReport(
                shard_id=shard_id,
                path=path,
                predicted_cost=predicted,
                result_size=num_results,
                counter=counter,
            )
        )
        plan = report.plan
        plan.shard_choices.append((shard_id, path, predicted))
        plan.candidates[0].predicted_cost += predicted


# -- execution backends --------------------------------------------------------


class _SerialBackend:
    """Run every shard's slice in the calling thread (reference backend)."""

    name = "serial"
    shares_memory = True

    def __init__(self, runtimes: Sequence[ShardRuntime], max_workers=None):
        self._runtimes = list(runtimes)

    def map(self, method: str, payloads: Sequence[list], **kwargs) -> List[list]:
        return [
            getattr(runtime, method)(payload, **kwargs)
            for runtime, payload in zip(self._runtimes, payloads)
        ]

    def close(self) -> None:
        pass


class _ThreadBackend:
    """One pool thread per shard slice; shards share the parent's memory."""

    name = "thread"
    shares_memory = True

    def __init__(
        self, runtimes: Sequence[ShardRuntime], max_workers: Optional[int] = None
    ):
        self._runtimes = list(runtimes)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers or len(self._runtimes)
        )

    def map(self, method: str, payloads: Sequence[list], **kwargs) -> List[list]:
        futures = [
            self._pool.submit(getattr(runtime, method), payload, **kwargs)
            for runtime, payload in zip(self._runtimes, payloads)
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._pool.shutdown(wait=True)


# Fork-backend plumbing: workers inherit the parent's runtimes through this
# module-level registry, captured at fork time.  Entries are registered
# BEFORE any worker process exists and the runtimes' index state is
# immutable afterwards, so parent and children stay consistent; only the
# per-query stash diverges, and it lives exclusively in the worker.
_FORK_REGISTRY: Dict[int, List[ShardRuntime]] = {}
_FORK_KEYS = itertools.count()


def _fork_call(key: int, shard_id: int, method: str, payload: list) -> list:
    runtime = _FORK_REGISTRY[key][shard_id]
    return getattr(runtime, method)(payload)


def fork_available() -> bool:
    """Whether the copy-on-write fork backend can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


class _ForkBackend:
    """One dedicated forked worker process per shard.

    Dedicated (max_workers=1) executors give each shard task affinity:
    phase 1 and phase 2 of the same shard always execute in the same
    process, which the cross-phase stash requires.  Fork (not spawn)
    start: children get the built indexes by copy-on-write page sharing
    instead of pickling gigabytes of postings.
    """

    name = "fork"
    shares_memory = False

    def __init__(
        self, runtimes: Sequence[ShardRuntime], max_workers=None
    ):
        if not fork_available():
            raise QueryError("fork start method unavailable on this platform")
        self._key = next(_FORK_KEYS)
        _FORK_REGISTRY[self._key] = list(runtimes)
        context = multiprocessing.get_context("fork")
        self._pools = [
            ProcessPoolExecutor(max_workers=1, mp_context=context)
            for _ in runtimes
        ]

    def map(self, method: str, payloads: Sequence[list], **kwargs) -> List[list]:
        # kwargs carry live in-memory objects (shared thresholds) that
        # cannot cross a process boundary; callers never pass them to this
        # backend, and dropping them is always result-preserving.
        futures = [
            pool.submit(_fork_call, self._key, shard_id, method, payload)
            for shard_id, (pool, payload) in enumerate(zip(self._pools, payloads))
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)
        _FORK_REGISTRY.pop(self._key, None)


_BACKENDS = {
    "serial": _SerialBackend,
    "thread": _ThreadBackend,
    "fork": _ForkBackend,
}


def _pick_backend(executor: str):
    if executor == "auto":
        return _ForkBackend if fork_available() else _ThreadBackend
    cls = _BACKENDS.get(executor)
    if cls is None:
        raise QueryError(
            f"unknown executor {executor!r} (have auto, {sorted(_BACKENDS)})"
        )
    return cls


# -- the engine ----------------------------------------------------------------


class ShardedEngine:
    """Context-sensitive search over a sharded index, results bit-identical
    to :class:`~repro.core.engine.ContextSearchEngine` on the same corpus.

    ``catalogs`` (optional) is one :class:`ViewCatalog` per shard — see
    :func:`repro.views.sharding.materialize_sharded_catalogs`.  ``executor``
    selects the backend (``auto``/``serial``/``thread``/``fork``); call
    :meth:`close` (or use as a context manager) to release worker pools.
    """

    def __init__(
        self,
        sharded_index: ShardedInvertedIndex,
        ranking: Optional[RankingFunction] = None,
        catalogs: Optional[Sequence[Optional[ViewCatalog]]] = None,
        executor: str = "auto",
        max_workers: Optional[int] = None,
        use_skips: bool = True,
    ):
        if not sharded_index.committed:
            raise QueryError("all shards must be committed before searching")
        if catalogs is not None and len(catalogs) != sharded_index.num_shards:
            raise QueryError(
                f"{len(catalogs)} catalogs for {sharded_index.num_shards} shards"
            )
        self.sharded_index = sharded_index
        self.ranking = ranking if ranking is not None else DEFAULT_RANKING_FUNCTION
        self.runtimes = [
            ShardRuntime(
                shard,
                self.ranking,
                catalogs[i] if catalogs is not None else None,
                use_skips=use_skips,
            )
            for i, shard in enumerate(sharded_index.shards)
        ]
        self._backend = _pick_backend(executor)(self.runtimes, max_workers)
        self._authority = VersionAuthority(
            epoch_source=lambda: self.sharded_index.epoch
        )
        self.last_reselection: Optional[dict] = None
        self._global_tc_cache: Dict[str, int] = {}
        # Analyzers are configuration, identical across shards; shard 0's
        # stand in for the collection's.
        self._analyzer = sharded_index.shards[0].index.analyzer
        self._predicate_analyzer = sharded_index.shards[0].index.predicate_analyzer

    # -- lifecycle ------------------------------------------------------

    @property
    def executor_name(self) -> str:
        return self._backend.name

    @property
    def epoch(self) -> int:
        """Global mutation counter over all shard sub-indexes."""
        return self.sharded_index.epoch

    @property
    def catalog_generation(self) -> int:
        """How many hot-swaps the per-shard catalogs have seen."""
        return self._authority.catalog_generation

    @property
    def version(self) -> VersionVector:
        """The engine's :class:`~repro.core.backend.VersionVector`."""
        return self._authority.vector()

    @property
    def supports_hot_swap(self) -> bool:
        """Fork workers hold copy-on-write runtimes captured at fork
        time — a parent-side swap can never reach them, so that shape
        refuses hot-swaps loudly rather than serve a stale catalog."""
        return self._backend.shares_memory

    # The adaptive controller must not reselect over a shard's partial
    # index: view definitions are chosen against whole-collection
    # statistics (then materialised per shard), so it needs the original
    # unsharded index.
    needs_reference_index = True

    def install_catalog(
        self,
        catalog: Union[ViewCatalog, Sequence[Optional[ViewCatalog]], None],
        info: Optional[dict] = None,
        generation: Optional[int] = None,
    ) -> int:
        """Atomically install a catalog across all shards.

        ``catalog`` may be a whole-collection :class:`ViewCatalog` (its
        view *definitions* are re-materialised per shard — exact because
        df/tc aggregate distributively over shards), a sequence of one
        pre-materialised catalog per shard, or ``None`` to drop every
        shard's catalog.  Bumps and returns the catalog generation.
        """
        if not self.supports_hot_swap:
            raise QueryError(
                f"catalog hot-swap is not supported on the "
                f"{self._backend.name!r} executor: forked shard workers "
                "hold copy-on-write runtimes captured at fork time and "
                "would keep serving the old catalog (use the serial or "
                "thread executor for adaptive selection)"
            )
        if isinstance(catalog, ViewCatalog):
            from ..views.sharding import (
                catalog_definitions,
                materialize_sharded_catalogs,
            )

            catalogs: Optional[Sequence[Optional[ViewCatalog]]] = (
                materialize_sharded_catalogs(
                    self.sharded_index, catalog_definitions(catalog)
                )
            )
        else:
            catalogs = catalog
        if catalogs is not None and len(catalogs) != self.sharded_index.num_shards:
            raise QueryError(
                f"{len(catalogs)} catalogs for {self.sharded_index.num_shards} shards"
            )
        for i, runtime in enumerate(self.runtimes):
            runtime.catalog_handle.swap(
                catalogs[i] if catalogs is not None else None
            )
        self.last_reselection = dict(info) if info else None
        return self._authority.bump_catalog(generation)

    def swap_catalogs(
        self, catalogs: Optional[Sequence[Optional[ViewCatalog]]]
    ) -> int:
        """Deprecated alias for :meth:`install_catalog` with one
        pre-materialised catalog per shard."""
        return self.install_catalog(catalogs)

    def close(self) -> None:
        """Release backend worker pools and shard index resources
        (idempotent)."""
        self._backend.close()
        closer = getattr(self.sharded_index, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- public API -----------------------------------------------------

    def search(
        self,
        query: Union[ContextQuery, str],
        top_k: Optional[int] = None,
        path: str = PATH_AUTO,
    ) -> SearchResults:
        """Context-sensitive ``Q_c = Q_k | P`` across all shards.

        ``path`` forces each shard's physical path where feasible
        (shards whose catalog cannot serve a forced ``views`` path fall
        back locally); forcing never changes results.
        """
        return self._single(query, top_k, "context", path)

    def search_conventional(
        self, query: Union[ContextQuery, str], top_k: Optional[int] = None
    ) -> SearchResults:
        """The conventional baseline ``Q_t = Q_k ∪ P`` across all shards."""
        return self._single(query, top_k, "conventional")

    def search_disjunctive(
        self,
        query: Union[ContextQuery, str],
        top_k: int = 10,
        path: str = PATH_AUTO,
        block_max: bool = True,
    ) -> SearchResults:
        """OR-semantics context-sensitive top-k across all shards."""
        return self._single(query, top_k, "disjunctive", path, block_max)

    def explain(
        self,
        query: Union[ContextQuery, str],
        top_k: Optional[int] = None,
        mode: str = MODE_CONTEXT,
        path: str = PATH_AUTO,
        block_max: bool = True,
    ) -> SearchResults:
        """Evaluate and return results whose report carries the aggregate
        plan (per-shard choices, predicted vs. actual counts)."""
        if mode == MODE_CONVENTIONAL:
            return self.search_conventional(query, top_k=top_k)
        if mode == MODE_DISJUNCTIVE:
            return self.search_disjunctive(
                query,
                top_k=top_k if top_k is not None else 10,
                path=path,
                block_max=block_max,
            )
        return self.search(query, top_k=top_k, path=path)

    def search_many(
        self,
        queries: Iterable[Union[ContextQuery, str]],
        top_k: Optional[int] = None,
        mode: str = "context",
        path: str = PATH_AUTO,
        block_max: bool = True,
    ) -> BatchReport:
        """Evaluate a workload with one scatter-gather round per phase.

        The batch shape is what makes sharding pay at serving time: a
        batch of B queries costs two dispatches per shard (one per phase),
        not 2·B, so per-task overhead amortises across the workload.
        Outcomes come back in input order; per-query failures (empty
        context, stopword-only keywords, …) are recorded, never raised.
        """
        if mode not in ("context", "conventional", "disjunctive"):
            raise QueryError(f"unknown batch mode: {mode!r}")
        queries = list(queries)
        started = time.perf_counter()
        results = self._execute_batch(queries, top_k, mode, path, block_max)
        elapsed = time.perf_counter() - started
        outcomes = []
        for query, result in zip(queries, results):
            text = query if isinstance(query, str) else str(query)
            if isinstance(result, ReproError):
                outcomes.append(
                    BatchOutcome(
                        query=text, error=f"{type(result).__name__}: {result}"
                    )
                )
            else:
                outcomes.append(BatchOutcome(query=text, results=result))
        return BatchReport(
            outcomes=outcomes,
            mode=mode,
            workers=self.sharded_index.num_shards,
            elapsed_seconds=elapsed,
        )

    def context_statistics(
        self,
        context: Union[ContextSpecification, Sequence[str]],
        keywords: Sequence[str] = (),
    ) -> CollectionStatistics:
        """Merged global context statistics (straightforward plan, no views)."""
        if not isinstance(context, ContextSpecification):
            context = ContextSpecification(context)
        keywords = [self._analyze_keyword(w) for w in keywords] or ["__none__"]
        specs = self.ranking.required_collection_specs(keywords)
        StatsMerge.check_additive(specs)
        tasks = [
            (0, tuple(keywords), tuple(context.predicates), tuple(specs), False, None)
        ]
        shard_outputs = self._backend.map(
            "stats_many", [list(tasks)] * self.sharded_index.num_shards
        )
        merged = StatsMerge.merge([out[0][1] for out in shard_outputs], specs)
        if StatsMerge.cardinality_of(merged, specs) <= 0:
            raise EmptyContextError(f"context {context} matches no documents")
        return CollectionStatistics.from_values(merged)

    # -- batch execution internals --------------------------------------

    def _single(
        self,
        query: Union[ContextQuery, str],
        top_k: Optional[int],
        mode: str,
        path: str = PATH_AUTO,
        block_max: bool = True,
    ) -> SearchResults:
        result = self._execute_batch([query], top_k, mode, path, block_max)[0]
        if isinstance(result, ReproError):
            raise result
        return result

    def _validate_path(self, path: str) -> Optional[str]:
        """Parent-side force validation (shards then apply it locally)."""
        if path in (None, PATH_AUTO):
            return None
        if path not in FORCEABLE_PATHS:
            raise QueryError(
                f"unknown path {path!r} (have {PATH_AUTO}, "
                f"{', '.join(FORCEABLE_PATHS)})"
            )
        if path == PATH_VIEWS and all(
            runtime.catalog is None or len(runtime.catalog) == 0
            for runtime in self.runtimes
        ):
            raise QueryError(
                "path 'views' is not available: no shard has a view catalog"
            )
        return path

    def _execute_batch(
        self,
        queries: Sequence[Union[ContextQuery, str]],
        top_k: Optional[int],
        mode: str,
        path: str = PATH_AUTO,
        block_max: bool = True,
    ) -> List[Union[SearchResults, ReproError]]:
        started = time.perf_counter()
        force = self._validate_path(path)
        num_shards = self.sharded_index.num_shards
        results: List[Optional[Union[SearchResults, ReproError]]] = [None] * len(
            queries
        )

        # Parse + analyse in the parent; failures claim their slot now.
        # All merge state for the batch lives in the shared plan object.
        plan = ShardMergePlan(
            self.ranking, mode, top_k, forced=force is not None
        )
        analyzed: Dict[int, ContextQuery] = {}
        specs_by_qid: Dict[int, Tuple[StatisticSpec, ...]] = {}
        for qid, query in enumerate(queries):
            try:
                parsed = parse_query(query) if isinstance(query, str) else query
                analyzed_query = self._analyze(parsed)
                specs_by_qid[qid] = plan.add_query(qid, analyzed_query)
                analyzed[qid] = analyzed_query
            except ReproError as exc:
                results[qid] = exc

        if mode == "context":
            self._run_context(
                analyzed, specs_by_qid, plan, top_k, results, num_shards, force
            )
        elif mode == "conventional":
            self._run_conventional(analyzed, plan, top_k, results, num_shards)
        else:
            self._run_disjunctive(
                analyzed, specs_by_qid, plan, results, num_shards, force,
                block_max,
            )

        elapsed = time.perf_counter() - started
        for result in results:
            if isinstance(result, SearchResults):
                # Shards run interleaved, so per-query wall-clock is not
                # observable; every report carries the batch wall-clock.
                result.report.elapsed_seconds = elapsed
        return results  # type: ignore[return-value]

    def _run_context(
        self, analyzed, specs_by_qid, plan, top_k, results, num_shards, force
    ):
        phase1 = [
            (
                qid,
                tuple(query.keywords),
                tuple(query.predicates),
                specs_by_qid[qid],
                force,
            )
            for qid, query in analyzed.items()
        ]
        if not phase1:
            return
        shard_outputs = self._backend.map(
            "resolve_many", [list(phase1)] * num_shards
        )
        for shard_id, output in enumerate(shard_outputs):
            # Shard order: deterministic merges.
            for qid, values, num_results, path, predicted, counter in output:
                plan.add_resolution(
                    qid, shard_id, values, path, predicted, counter, num_results
                )

        phase2 = []
        for qid in analyzed:
            error = plan.complete_resolution(qid)
            if error is not None:
                results[qid] = error
                phase2.append((qid, None, top_k))  # discard the stash
                continue
            phase2.append((qid, plan.merged_values(qid), top_k))
        shard_outputs = self._backend.map("score_many", [list(phase2)] * num_shards)
        for output in shard_outputs:
            for qid, hits in output:
                if not isinstance(results[qid], ReproError):
                    plan.add_hits(qid, hits)
        for qid in analyzed:
            if not isinstance(results[qid], ReproError):
                results[qid] = plan.finish(qid)

    def _run_conventional(self, analyzed, plan, top_k, results, num_shards):
        tasks = []
        for qid, query in analyzed.items():
            stats = self._global_statistics(query.keywords)
            tasks.append(
                (qid, tuple(query.keywords), tuple(query.predicates), stats, top_k)
            )
        if not tasks:
            return
        shard_outputs = self._backend.map(
            "conventional_many", [list(tasks)] * num_shards
        )
        for shard_id, output in enumerate(shard_outputs):
            for qid, hits, num_results, predicted, counter in output:
                plan.add_conventional(
                    qid, shard_id, hits, num_results, predicted, counter
                )
        for qid in analyzed:
            results[qid] = plan.finish(qid)

    def _run_disjunctive(
        self, analyzed, specs_by_qid, plan, results, num_shards, force,
        block_max=True,
    ):
        k = plan.top_k
        phase1 = [
            (
                qid,
                tuple(query.keywords),
                tuple(query.predicates),
                specs_by_qid[qid],
                True,
                force,
            )
            for qid, query in analyzed.items()
        ]
        if not phase1:
            return
        shard_outputs = self._backend.map("stats_many", [list(phase1)] * num_shards)
        for shard_id, output in enumerate(shard_outputs):
            for qid, values, path, predicted, counter in output:
                plan.add_resolution(qid, shard_id, values, path, predicted, counter)

        phase2 = []
        shared_by_qid: Dict[int, SharedTopKThreshold] = {}
        for qid, query in analyzed.items():
            error = plan.complete_resolution(qid)
            if error is not None:
                results[qid] = error
                continue
            bounds = plan.term_bounds(qid, self.sharded_index.max_tf)
            shared_by_qid[qid] = plan.shared_threshold()
            phase2.append(
                (
                    qid,
                    tuple(query.keywords),
                    tuple(query.predicates),
                    plan.merged_values(qid),
                    k,
                    bounds,
                    block_max,
                )
            )
        if not phase2:
            return
        kwargs = (
            {"shared_by_qid": shared_by_qid}
            if self._backend.shares_memory
            else {}
        )
        shard_outputs = self._backend.map(
            "topk_many", [list(phase2)] * num_shards, **kwargs
        )
        live = {entry[0] for entry in phase2}
        for shard_id, output in enumerate(shard_outputs):
            for qid, hits, counter, topk_diag in output:
                plan.add_topk(qid, shard_id, hits, counter, topk_diag, block_max)
        for qid in live:
            results[qid] = plan.finish(qid)

    # -- merge helpers ---------------------------------------------------

    @staticmethod
    def _check_additive(specs: Sequence[StatisticSpec]) -> None:
        """Back-compat alias for :meth:`StatsMerge.check_additive`."""
        StatsMerge.check_additive(specs)

    def _global_statistics(self, keywords: Sequence[str]) -> CollectionStatistics:
        """Whole-collection ``S_c(D)`` via exact per-shard sums."""
        df = {w: self.sharded_index.document_frequency(w) for w in keywords}
        wants_tc = any(
            spec.kind == TERM_COUNT
            for spec in self.ranking.required_collection_specs(keywords)
        )
        tc = {w: self._global_tc(w) for w in keywords} if wants_tc else {}
        return CollectionStatistics(
            cardinality=self.sharded_index.num_docs,
            total_length=self.sharded_index.total_length,
            df=df,
            tc=tc,
        )

    def _global_tc(self, term: str) -> int:
        cached = self._global_tc_cache.get(term)
        if cached is None:
            cached = self.sharded_index.term_count(term)
            self._global_tc_cache[term] = cached
        return cached

    # -- analysis (mirrors ContextSearchEngine) --------------------------

    def _analyze_keyword(self, keyword: str) -> str:
        analyzed = self._analyzer.analyze_query_term(keyword)
        if analyzed is None:
            raise QueryError(
                f"keyword {keyword!r} was removed by analysis (stopword?)"
            )
        return analyzed

    def _analyze(self, query: ContextQuery) -> ContextQuery:
        keywords = [self._analyze_keyword(w) for w in query.keywords]
        predicates = []
        for m in query.predicates:
            analyzed = self._predicate_analyzer.analyze_query_term(m)
            if analyzed is None:
                raise QueryError(f"empty context predicate: {m!r}")
            predicates.append(analyzed)
        return ContextQuery(
            KeywordQuery(keywords), ContextSpecification(predicates)
        )


def _merge_paths(paths: set) -> str:
    """Collapse per-shard resolution paths into one report label."""
    if paths == {"views"}:
        return "sharded-views"
    if paths == {"straightforward"} or not paths:
        return "sharded-straightforward"
    return "sharded-mixed"
