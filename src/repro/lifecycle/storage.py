"""On-disk layout and atomic commit protocol of the segmented index.

A segmented index directory looks like::

    <dir>/manifest.json            the commit point (atomic os.replace)
    <dir>/wal-<version>.jsonl      the live WAL generation
    <dir>/segments/<id>.seg        one immutable file per sealed segment
                                   (binary block format; legacy segments
                                   may persist as <id>.json.gz)

**Commit protocol.**  Segment files are written first (each via a
temporary file + ``os.replace``; segments are immutable so a file is
written exactly once and never modified).  The manifest is then replaced
atomically — *that* replace is the commit point: it names the segment
files, the tombstone set, the docid high-water mark, the clock version,
and the WAL generation that starts empty at this commit.  Only after the
manifest lands are the previous WAL generation and any orphaned segment
files (left behind by compaction) deleted; a crash anywhere in the
sequence leaves either the old manifest (old WAL replays over the old
state) or the new manifest (old WAL is ignored garbage) — never a state
that loses an acknowledged write.

**Generational WAL.**  The manifest names its WAL file
(``wal-<version>.jsonl``) instead of reusing one path.  This is what
makes recovery idempotent without sequence numbers: operations recorded
before a commit are baked into the manifest's segments and their old WAL
generation is simply never replayed again, even if the crash happened
before the old file was unlinked.

Segment payloads persist **precompiled posting columns** next to the
analysed documents, so loading a segment is O(documents + postings) —
array adoption, no re-tokenisation, no posting accumulation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..index.documents import StoredDocument
from ..index.postings import PostingList
from .segment import Segment

__all__ = ["SegmentStorage", "ManifestState"]

PathLike = Union[str, Path]

SEGMENT_DIR = "segments"
MANIFEST_NAME = "manifest.json"
# v4 stores segments as binary block files (``<id>.seg``, see
# repro.index.blockstore): mmap-backed, bit-packed posting blocks
# decoded lazily per query.  v3 added max_tf and the per-block max-tf
# column to the JSON payload; v2 (columns only) recomputes the maxima
# at freeze.  All three load; a directory may mix formats — each
# segment file is sniffed by content, and flush/compaction emit the
# storage's configured format for *new* segments without rewriting old
# ones.
SEGMENT_FORMAT_VERSION = 4
SUPPORTED_SEGMENT_VERSIONS = (2, 3, 4)
_SEGMENT_SUFFIXES = {3: ".json.gz", 4: ".seg"}


def _storage_error(message: str):
    from ..storage import StorageError

    return StorageError(message)


def _encode_column(values) -> str:
    from ..storage import encode_column

    return encode_column(values)


def _decode_column(text):
    from ..storage import decode_column

    return decode_column(text)


def _encode_tokens(tokens):
    from ..storage import encode_tokens

    return encode_tokens(tokens)


def _lazy_tokens(mapping):
    from ..storage import LazyTokenFields

    return LazyTokenFields(mapping)


def _write_atomic(path: Path, payload: dict, gzipped: bool) -> None:
    """Write JSON to ``path`` via a temporary sibling + ``os.replace``."""
    import gzip

    tmp = path.with_name(path.name + ".tmp")
    if gzipped:
        with gzip.open(tmp, "wt", encoding="utf-8") as handle:
            json.dump(payload, handle)
    else:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
    os.replace(tmp, path)


def _read_json(path: Path) -> dict:
    """Read one JSON artefact; corruption surfaces as a StorageError."""
    import gzip

    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                return json.load(handle)
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise _storage_error(f"missing artefact {path}") from None
    except (ValueError, EOFError, OSError, UnicodeDecodeError) as exc:
        raise _storage_error(f"corrupt artefact {path}: {exc}") from None


def _encode_segment(segment: Segment) -> dict:
    return {
        "kind": "segment",
        # JSON payloads are the v3 layout regardless of the storage's
        # configured default; v4 is the binary block-file format.
        "version": 3,
        "segment_id": segment.segment_id,
        "documents": [
            {
                "internal_id": doc.internal_id,
                "external_id": doc.external_id,
                "field_tokens": {
                    name: _encode_tokens(tokens)
                    for name, tokens in doc.field_tokens.items()
                },
                "length": doc.length,
                "unique_terms": doc.unique_terms,
            }
            for doc in segment.documents
        ],
        "content": {
            term: [
                _encode_column(plist.doc_ids),
                _encode_column(plist.tfs),
                plist.max_tf,
                _encode_column(plist.block_max_tfs),
            ]
            for term, plist in segment.content.items()
        },
        "predicates": {
            term: _encode_column(plist.doc_ids)
            for term, plist in segment.predicates.items()
        },
    }


def _decode_segment(payload: dict, path: Path, segment_size: int) -> Segment:
    if payload.get("kind") != "segment":
        raise _storage_error(
            f"expected a persisted segment in {path}, "
            f"found {payload.get('kind')!r}"
        )
    version = payload.get("version")
    if version not in SUPPORTED_SEGMENT_VERSIONS:
        raise _storage_error(
            f"unsupported segment format version {version!r} "
            f"in {path} (this build reads versions "
            f"{', '.join(map(str, SUPPORTED_SEGMENT_VERSIONS))})"
        )
    try:
        documents = [
            StoredDocument(
                internal_id=entry["internal_id"],
                external_id=entry["external_id"],
                field_tokens=_lazy_tokens(entry["field_tokens"]),
                length=entry["length"],
                unique_terms=entry["unique_terms"],
            )
            for entry in payload["documents"]
        ]
        content = {}
        if version >= 3:
            for term, (ids, tfs, max_tf, blocks) in payload["content"].items():
                content[term] = PostingList.from_arrays(
                    term,
                    _decode_column(ids),
                    _decode_column(tfs),
                    segment_size=segment_size,
                    validate=False,
                    max_tf=max_tf,
                    block_max_tfs=_decode_column(blocks),
                )
        else:
            # v2 legacy: freeze recomputes max_tf and the block maxima.
            for term, (ids, tfs) in payload["content"].items():
                content[term] = PostingList.from_arrays(
                    term,
                    _decode_column(ids),
                    _decode_column(tfs),
                    segment_size=segment_size,
                    validate=False,
                )
        predicates = {}
        for term, packed in payload["predicates"].items():
            ids = _decode_column(packed)
            predicates[term] = PostingList.from_arrays(
                term,
                ids,
                [1] * len(ids),
                segment_size=segment_size,
                validate=False,
                max_tf=1 if len(ids) else 0,
                block_max_tfs=[1] * (-(-len(ids) // segment_size)),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise _storage_error(
            f"malformed segment payload in {path}: {exc!r}"
        ) from None
    return Segment(
        payload["segment_id"],
        documents,
        content,
        predicates,
        segment_size=segment_size,
    )


def _is_block_segment(path: Path) -> bool:
    from ..index import blockstore

    return blockstore.is_block_file(path)


def _load_block_segment(
    path: Path, segment_id: str, segment_size: int
) -> Segment:
    """Open a v4 block-file segment; the reader stays attached for lazy
    block decode and is released by :meth:`Segment.close`."""
    from ..index import blockstore

    reader = blockstore.BlockFile(path)
    try:
        if reader.kind != "segment":
            raise _storage_error(
                f"expected a persisted segment in {path}, "
                f"found {reader.kind!r}"
            )
        if reader.segment_size != segment_size:
            raise _storage_error(
                f"segment file {path} was sealed with segment_size "
                f"{reader.segment_size}, manifest expects {segment_size}"
            )
        stored_id = reader.header.get("segment_id", segment_id)
        if stored_id != segment_id:
            raise _storage_error(
                f"segment file {path} holds segment {stored_id!r}, "
                f"manifest expects {segment_id!r}"
            )
        segment = Segment(
            segment_id,
            reader.documents(),
            reader.posting_map("content"),
            reader.posting_map("predicates"),
            segment_size=segment_size,
        )
    except Exception:
        reader.close()
        raise
    segment.attach_source(reader)
    return segment


class ManifestState:
    """Everything one manifest load yields (plus the WAL to replay)."""

    def __init__(
        self,
        segments: List[Segment],
        tombstones: Set[int],
        next_doc_id: int,
        next_segment_number: int,
        version: int,
        config: dict,
        wal_name: str,
    ):
        self.segments = segments
        self.tombstones = tombstones
        self.next_doc_id = next_doc_id
        self.next_segment_number = next_segment_number
        self.version = version
        self.config = config
        self.wal_name = wal_name


class SegmentStorage:
    """Filesystem backing of one segmented index directory.

    ``segment_format`` picks the layout for *newly written* segment
    files (4 = binary block files, 3 = gzipped JSON); existing files are
    immutable and keep whatever format they were sealed in.
    """

    def __init__(
        self,
        directory: PathLike,
        segment_format: int = SEGMENT_FORMAT_VERSION,
    ):
        if segment_format not in _SEGMENT_SUFFIXES:
            raise _storage_error(
                f"cannot write segment format {segment_format!r} "
                f"(writable formats: "
                f"{', '.join(map(str, sorted(_SEGMENT_SUFFIXES)))})"
            )
        self.directory = Path(directory)
        self.segment_format = segment_format
        self.directory.mkdir(parents=True, exist_ok=True)
        (self.directory / SEGMENT_DIR).mkdir(exist_ok=True)

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def exists(self) -> bool:
        return self.manifest_path.exists()

    def wal_path(self, name: str) -> Path:
        return self.directory / name

    def default_wal_name(self) -> str:
        """The generation a fresh (pre-first-commit) directory logs to."""
        return "wal-000000.jsonl"

    def _segment_file_name(self, segment_id: str) -> str:
        """Resolve a segment's on-disk file name.

        Segment files are immutable, so if the segment was already
        sealed (in any format) its existing file is reused verbatim;
        only brand-new segments get the storage's configured format.
        """
        for suffix in _SEGMENT_SUFFIXES.values():
            name = f"{segment_id}{suffix}"
            if (self.directory / SEGMENT_DIR / name).exists():
                return name
        return f"{segment_id}{_SEGMENT_SUFFIXES[self.segment_format]}"

    def _write_segment(self, segment: Segment, path: Path) -> None:
        if path.suffix == ".seg":
            from ..index import blockstore

            blockstore.write_block_file(
                path,
                kind="segment",
                config={"segment_size": segment.segment_size},
                segment_size=segment.segment_size,
                documents=segment.documents,
                content=segment.content,
                predicates=segment.predicates,
                header_extra={"segment_id": segment.segment_id},
                atomic=True,
            )
        else:
            _write_atomic(path, _encode_segment(segment), gzipped=True)

    # -- commit ----------------------------------------------------------

    def commit(
        self,
        segments: Sequence[Segment],
        tombstones: Iterable[int],
        next_doc_id: int,
        next_segment_number: int,
        version: int,
        config: dict,
    ) -> str:
        """Persist the index state; returns the new live WAL name.

        See the module docstring for the ordering argument.  ``segments``
        must not contain ephemeral (memtable-seal) segments.
        """
        segment_files: Dict[str, str] = {}
        for segment in segments:
            if segment.ephemeral:
                raise _storage_error(
                    f"refusing to persist ephemeral segment "
                    f"{segment.segment_id!r}"
                )
            name = self._segment_file_name(segment.segment_id)
            segment_files[segment.segment_id] = name
            path = self.directory / SEGMENT_DIR / name
            if not path.exists():
                self._write_segment(segment, path)

        wal_name = f"wal-{version:06d}.jsonl"
        manifest = {
            "kind": "segmented_index",
            "version": self.segment_format,
            "config": dict(config),
            "next_doc_id": next_doc_id,
            "next_segment_number": next_segment_number,
            "clock_version": version,
            "wal": wal_name,
            "tombstones": sorted(tombstones),
            "segments": [
                {
                    "segment_id": segment.segment_id,
                    "file": f"{SEGMENT_DIR}/{segment_files[segment.segment_id]}",
                    "num_docs": segment.num_docs,
                    "min_doc_id": segment.min_doc_id,
                    "max_doc_id": segment.max_doc_id,
                }
                for segment in segments
            ],
        }
        _write_atomic(self.manifest_path, manifest, gzipped=False)

        # Post-commit cleanup: stale WAL generations and segment files the
        # manifest no longer references.  Best effort — leftovers are
        # ignored by the next load, never replayed or reread.
        live_segment_files = set(segment_files.values())
        for path in (self.directory / SEGMENT_DIR).iterdir():
            if path.name not in live_segment_files:
                try:
                    path.unlink()
                except OSError:
                    pass
        for path in self.directory.glob("wal-*.jsonl"):
            if path.name != wal_name:
                try:
                    path.unlink()
                except OSError:
                    pass
        return wal_name

    # -- load ------------------------------------------------------------

    def load(self) -> Optional[ManifestState]:
        """Load the committed state, or ``None`` for a fresh directory.

        A missing or unreadable segment file named by the manifest is a
        single readable :class:`~repro.storage.StorageError` identifying
        the file — the same robustness contract the sharded-index loader
        follows.
        """
        if not self.exists():
            return None
        manifest = _read_json(self.manifest_path)
        if manifest.get("kind") != "segmented_index":
            raise _storage_error(
                f"expected a segmented-index manifest in "
                f"{self.manifest_path}, found {manifest.get('kind')!r}"
            )
        if manifest.get("version") not in SUPPORTED_SEGMENT_VERSIONS:
            raise _storage_error(
                f"unsupported manifest version {manifest.get('version')!r} "
                f"in {self.manifest_path} (this build reads versions "
                f"{', '.join(map(str, SUPPORTED_SEGMENT_VERSIONS))})"
            )
        config = manifest.get("config", {})
        segment_size = config.get("segment_size", 64)
        segments: List[Segment] = []
        for entry in manifest.get("segments", ()):
            path = self.directory / entry["file"]
            if _is_block_segment(path):
                segment = _load_block_segment(
                    path, entry["segment_id"], segment_size
                )
            else:
                try:
                    payload = _read_json(path)
                except Exception as exc:
                    raise _storage_error(
                        f"segmented index {self.directory}: segment file "
                        f"{path} is missing or unreadable ({exc})"
                    ) from None
                segment = _decode_segment(payload, path, segment_size)
            segments.append(segment)
        return ManifestState(
            segments=segments,
            tombstones=set(manifest.get("tombstones", ())),
            next_doc_id=manifest.get("next_doc_id", 0),
            next_segment_number=manifest.get("next_segment_number", 0),
            version=manifest.get("clock_version", 0),
            config=config,
            wal_name=manifest.get("wal", self.default_wal_name()),
        )
