"""Serving over a segmented index: per-version engines, graceful swaps.

:class:`LifecycleEngine` is the glue between the mutable
:class:`~repro.lifecycle.index.SegmentedIndex` and the immutable query
stack.  Query engines (:class:`~repro.core.engine.ContextSearchEngine`,
or :class:`~repro.core.sharded_engine.ShardedEngine` when ``num_shards``
is set) are built over a :class:`~repro.lifecycle.snapshot.Snapshot` and
cached **per version**: a search always runs start-to-finish against one
snapshot's engine, and a mutation simply makes the *next* search build a
fresh engine over the new snapshot — the swap is graceful because the
old engine (and its snapshot) stay fully usable for whatever in-flight
work still holds them.

Freshness flows through one number: ``engine.epoch`` delegates to the
segmented index's :class:`~repro.lifecycle.version.VersionClock`, which
is the same value each snapshot is stamped with, which is the same value
the statistics cache guards on and the serving result cache keys on.
There is no second counter anywhere to drift.

An optional :class:`~repro.views.catalog.ViewCatalog` is maintained
*incrementally and synchronously* with mutations — per-document apply on
ingest, exact retraction on delete
(:func:`repro.views.maintenance.retract_catalog`) — so the views path
stays bit-identical to the straightforward path at every lifecycle
point.  In sharded mode the catalog's definitions are re-replicated per
snapshot (:func:`repro.views.sharding.replicate_catalog`).
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional, Sequence, Union

from ..core.backend import VersionAuthority, VersionVector
from ..core.engine import BatchExecutor, BatchReport, ContextSearchEngine, SearchResults
from ..core.ranking import RankingFunction
from ..errors import IndexError_
from ..index.documents import Document, StoredDocument
from .index import CompactionReport, SegmentedIndex
from .segment import Segment

__all__ = ["LifecycleEngine"]


class LifecycleEngine:
    """Always-fresh query engine over a :class:`SegmentedIndex`."""

    def __init__(
        self,
        index: SegmentedIndex,
        ranking: Optional[RankingFunction] = None,
        catalog=None,
        num_shards: int = 0,
        partitioner: str = "hash",
        executor: str = "serial",
        use_skips: bool = True,
        caches: Iterable = (),
    ):
        self.index = index
        self.ranking = ranking
        self.catalog = catalog
        self.num_shards = num_shards
        self.partitioner = partitioner
        self.executor = executor
        self.use_skips = use_skips
        # Extra invalidation hooks (rarely needed: epoch-guarded caches
        # self-invalidate; this covers wrappers without an epoch).
        self._caches = list(caches)
        self._lock = threading.RLock()
        self._engine = None
        self._engine_version: Optional[int] = None
        # Adaptive-selection state: generation counts hot-swaps,
        # last_reselection records what the most recent swap installed,
        # and maintenance hooks fire after flush/compaction so a
        # background reselector can react to lifecycle events.  Hooks
        # must be quick (set a flag, wake a thread) — they run on the
        # mutating caller's thread.
        self._authority = VersionAuthority(epoch_source=lambda: self.index.epoch)
        self.last_reselection: Optional[dict] = None
        self._maintenance_hooks: List = []

    # -- mutation API -----------------------------------------------------

    def ingest(
        self, documents: Iterable[Document], auto_flush: bool = False
    ) -> List[StoredDocument]:
        """Add documents (WAL + memtable) and maintain the catalog."""
        with self._lock:
            stored = self.index.add_documents(documents, auto_flush=auto_flush)
            if self.catalog is not None and stored:
                from ..views.maintenance import maintain_catalog

                maintain_catalog(
                    self.catalog, self.index, stored, caches=self._caches
                )
            elif self._caches:
                self._invalidate_caches()
            return stored

    def delete(self, external_ids: Iterable[str]) -> int:
        """Tombstone-delete documents and retract them from the catalog."""
        external_ids = list(external_ids)
        with self._lock:
            removed: List[StoredDocument] = []
            if self.catalog is not None:
                for external_id in external_ids:
                    stored = self.index.get_document(external_id)
                    if stored is None:
                        raise IndexError_(
                            f"cannot delete unknown document id: "
                            f"{external_id!r}"
                        )
                    removed.append(stored)
            count = self.index.delete_documents(external_ids)
            if self.catalog is not None and removed:
                from ..views.maintenance import retract_catalog

                retract_catalog(
                    self.catalog, self.index, removed, caches=self._caches
                )
            elif self._caches:
                self._invalidate_caches()
            return count

    def flush(self) -> Optional[Segment]:
        """Seal the memtable (manifest commit + WAL rotation)."""
        with self._lock:
            segment = self.index.flush()
        self._fire_maintenance_hooks("flush")
        return segment

    def compact(self, full: bool = False) -> CompactionReport:
        """Merge segments and physically drop tombstoned documents."""
        with self._lock:
            report = self.index.compact(full=full)
        self._fire_maintenance_hooks("compact")
        return report

    def _invalidate_caches(self) -> None:
        for cache in self._caches:
            cache.invalidate()

    # -- adaptive selection hooks -----------------------------------------

    def add_maintenance_hook(self, hook) -> None:
        """Register ``hook(event)`` to fire after every flush/compaction.

        The adaptive controller uses this to re-check its reselection
        triggers at lifecycle boundaries.  Hooks run on the mutating
        thread, outside the engine lock, and must return quickly.
        """
        self._maintenance_hooks.append(hook)

    def _fire_maintenance_hooks(self, event: str) -> None:
        for hook in list(self._maintenance_hooks):
            hook(event)

    @property
    def catalog_generation(self) -> int:
        """How many catalog hot-swaps this engine has installed."""
        return self._authority.catalog_generation

    @property
    def version(self) -> VersionVector:
        """The engine's :class:`~repro.core.backend.VersionVector`."""
        return self._authority.vector()

    def install_catalog(
        self,
        catalog,
        info: Optional[dict] = None,
        generation: Optional[int] = None,
    ) -> int:
        """Atomically hot-swap the catalog at a snapshot-version boundary.

        The new catalog must be fully built and exact for the current
        collection (the reselector guarantees this by reusing
        incrementally-maintained views and materialising the rest from
        the live index under this engine's lock).  Installing it:

        * replaces ``self.catalog`` so the *next* ``current_engine()``
          call builds a fresh engine (flat or sharded) over it;
        * bumps the index's version clock, which is the system's single
          epoch source — the per-version engine cache, the statistics
          cache, and the serving result cache all roll over at once, so
          no reader can mix old-catalog plans with new-catalog state;
        * records ``info`` as :attr:`last_reselection` for ``info``/
          ``healthz`` reporting.

        In-flight queries holding the previous snapshot's engine finish
        against the old catalog — a consistent (and ranking-identical)
        view.  Returns the new catalog generation.
        """
        with self._lock:
            self.catalog = catalog
            new_generation = self._authority.bump_catalog(generation)
            self.index.bump_version()
            self.last_reselection = dict(info) if info else None
            if self._caches:
                self._invalidate_caches()
            return new_generation

    # -- engine management ------------------------------------------------

    @property
    def epoch(self) -> int:
        """The index's version clock — the system's single epoch source."""
        return self.index.epoch

    def current_engine(self):
        """The query engine for the current snapshot (built on demand).

        Engines are swapped whole: a version change builds a fresh
        engine over the new snapshot and retires the old one (its worker
        pools drain in-flight work before releasing), so a query that
        already holds an engine keeps a consistent view to completion.
        """
        with self._lock:
            snapshot = self.index.snapshot()
            if (
                self._engine is not None
                and self._engine_version == snapshot.version
            ):
                return self._engine
            old = self._engine
            if self.num_shards:
                engine = self._build_sharded(snapshot)
            else:
                engine = ContextSearchEngine(
                    snapshot,
                    ranking=self.ranking,
                    catalog=self.catalog,
                    use_skips=self.use_skips,
                )
            self._engine = engine
            self._engine_version = snapshot.version
        if old is not None and hasattr(old, "close"):
            old.close()
        return engine

    def _build_sharded(self, snapshot):
        from ..core.sharded_engine import ShardedEngine
        from ..index.sharded import ShardedInvertedIndex

        sharded_index = ShardedInvertedIndex.from_index(
            snapshot, self.num_shards, self.partitioner
        )
        # The redistributed index must report the snapshot's version, not
        # a private counter — one clock across the whole read path.
        sharded_index._clock.advance_to(snapshot.version)
        catalogs = None
        if self.catalog is not None:
            from ..views.sharding import replicate_catalog

            catalogs = replicate_catalog(sharded_index, self.catalog)
        return ShardedEngine(
            sharded_index,
            ranking=self.ranking,
            catalogs=catalogs,
            executor=self.executor,
            use_skips=self.use_skips,
        )

    def close(self) -> None:
        """Retire the current engine and release the WAL handle."""
        with self._lock:
            if self._engine is not None and hasattr(self._engine, "close"):
                self._engine.close()
            self._engine = None
            self._engine_version = None
            self.index.close()

    def __enter__(self) -> "LifecycleEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- query API (delegates to the per-version engine) ------------------

    def search(self, query, top_k: Optional[int] = None, path: str = "auto") -> SearchResults:
        return self.current_engine().search(query, top_k=top_k, path=path)

    def search_conventional(
        self, query, top_k: Optional[int] = None
    ) -> SearchResults:
        return self.current_engine().search_conventional(query, top_k=top_k)

    def search_disjunctive(
        self, query, top_k: int = 10, path: str = "auto", block_max: bool = True
    ) -> SearchResults:
        return self.current_engine().search_disjunctive(
            query, top_k=top_k, path=path, block_max=block_max
        )

    def explain(
        self,
        query,
        top_k: Optional[int] = None,
        mode: str = "context",
        path: str = "auto",
        block_max: bool = True,
    ) -> SearchResults:
        return self.current_engine().explain(
            query, top_k=top_k, mode=mode, path=path, block_max=block_max
        )

    def search_many(
        self,
        queries: Iterable[Union[str, object]],
        top_k: Optional[int] = None,
        mode: str = "context",
        path: str = "auto",
    ) -> BatchReport:
        """Batch evaluation — the query service's entry point.

        Sharded engines batch natively; a flat engine goes through
        :class:`~repro.core.engine.BatchExecutor` (shared context
        materialisations + prefetch), all against one snapshot.
        """
        engine = self.current_engine()
        if hasattr(engine, "search_many"):
            return engine.search_many(queries, top_k=top_k, mode=mode, path=path)
        return BatchExecutor(engine).run(queries, top_k=top_k, mode=mode, path=path)

    def context_statistics(self, context, keywords: Sequence[str] = ()):
        """Ground-truth context statistics, resolved segment by segment.

        Flat mode runs :class:`~repro.core.operators.SegmentStatsResolve`
        — the straightforward plan per segment, merged with
        ``StatsMerge`` — which is bit-identical to the whole-snapshot
        plan and doubles as its consistency check.  Sharded mode (and
        any ranking requesting a non-additive statistic) delegates to
        the engine's own resolution.
        """
        engine = self.current_engine()
        if not isinstance(engine, ContextSearchEngine):
            return engine.context_statistics(context, keywords)
        from ..core.operators import ExecutionContext, SegmentStatsResolve
        from ..core.query import ContextQuery, ContextSpecification, KeywordQuery
        from ..core.statistics import CollectionStatistics
        from ..errors import QueryError

        if not isinstance(context, ContextSpecification):
            context = ContextSpecification(context)
        analyzed = [engine._analyze_keyword(w) for w in keywords] or ["__none__"]
        probe = ContextQuery(KeywordQuery(analyzed), context)
        specs = engine.ranking.required_collection_specs(analyzed)
        resolve = SegmentStatsResolve(engine.index, use_skips=self.use_skips)
        try:
            execution = resolve.run(ExecutionContext(), probe, specs)
        except QueryError:
            # Non-additive statistic requested: whole-snapshot plan.
            return engine.context_statistics(context, keywords)
        return CollectionStatistics.from_values(execution.statistic_values)

    def lifecycle_info(self) -> dict:
        """Segment/WAL/version summary (served by ``healthz`` and ``info``)."""
        return self.index.info()

    def __repr__(self) -> str:
        return (
            f"LifecycleEngine(index={self.index!r}, "
            f"shards={self.num_shards or 'flat'})"
        )
