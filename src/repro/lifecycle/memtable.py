"""The in-memory write buffer of the segmented index.

All mutations land here first (after the WAL records them): document
adds are analysed immediately — with the *same* routine the flat index
uses, :func:`repro.index.inverted_index.analyze_document_fields`, so a
WAL replay reproduces token streams bit-identically — and assigned the
next **global** docid.  Global docids are arrival positions over the
whole index lifetime, never reused, which is what keeps every sealed
segment's docid range disjoint and ascending and therefore keeps
snapshot posting compilation a pure concatenation.

A delete of a document that only ever existed in the memtable removes
it outright (it never reaches a segment); its docid stays consumed, so
replaying the same operation sequence yields the same id assignment.
Deletes of already-sealed documents are not the memtable's business —
the :class:`~repro.lifecycle.index.SegmentedIndex` tombstones those.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import IndexError_
from ..index.analysis import Analyzer
from ..index.documents import Document, StoredDocument
from ..index.inverted_index import analyze_document_fields

__all__ = ["Memtable"]


class Memtable:
    """Mutable arrival-ordered buffer of analysed, not-yet-sealed docs."""

    def __init__(
        self,
        analyzer: Analyzer,
        predicate_analyzer: Analyzer,
        searchable_fields: Sequence[str],
        predicate_field: str,
        next_doc_id: int = 0,
    ):
        self.analyzer = analyzer
        self.predicate_analyzer = predicate_analyzer
        self.searchable_fields = tuple(searchable_fields)
        self.predicate_field = predicate_field
        self.next_doc_id = next_doc_id
        self._docs: Dict[str, StoredDocument] = {}
        self.total_length = 0

    # -- writes ----------------------------------------------------------

    def add(self, document: Document) -> StoredDocument:
        """Analyse one document and buffer it under the next global docid."""
        if document.doc_id in self._docs:
            raise IndexError_(f"duplicate document id: {document.doc_id!r}")
        field_tokens = analyze_document_fields(
            document,
            self.analyzer,
            self.predicate_analyzer,
            self.searchable_fields,
            self.predicate_field,
        )
        searchable = [
            token
            for name in self.searchable_fields
            for token in field_tokens.get(name, ())
        ]
        stored = StoredDocument(
            internal_id=self.next_doc_id,
            external_id=document.doc_id,
            field_tokens=field_tokens,
            length=len(searchable),
            unique_terms=len(set(searchable)),
        )
        self.next_doc_id += 1
        self._docs[document.doc_id] = stored
        self.total_length += stored.length
        return stored

    def delete(self, external_id: str) -> Optional[StoredDocument]:
        """Drop a buffered document; returns it, or ``None`` if not here.

        The consumed docid is *not* reclaimed — id assignment must be a
        pure function of the operation sequence for WAL replay.
        """
        stored = self._docs.pop(external_id, None)
        if stored is not None:
            self.total_length -= stored.length
        return stored

    # -- reads -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, external_id: str) -> bool:
        return external_id in self._docs

    def get(self, external_id: str) -> Optional[StoredDocument]:
        return self._docs.get(external_id)

    def documents(self) -> List[StoredDocument]:
        """Buffered documents in ascending docid (= arrival) order."""
        return sorted(self._docs.values(), key=lambda d: d.internal_id)

    def __repr__(self) -> str:
        return (
            f"Memtable(docs={len(self._docs)}, next_doc_id={self.next_doc_id})"
        )
