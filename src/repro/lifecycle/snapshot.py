"""Snapshot-isolated reads over a set of immutable segments.

A :class:`Snapshot` is the read contract of the segment lifecycle: an
immutable triple of *(segment list, tombstone set, version)* captured at
one :class:`~repro.lifecycle.version.VersionClock` tick.  Every query
runs start-to-finish against one snapshot, so concurrent flushes,
deletes, and compactions can never expose a half-applied mutation —
the serving layer swaps whole snapshots, never patches one.

The snapshot presents the exact read interface of
:class:`~repro.index.inverted_index.InvertedIndex` (postings, predicate
postings, store, collection statistics), so the entire query stack —
engines, operators, scorers, the boolean searcher, even the sharded
redistributor — runs over it unchanged.  Posting lists are *compiled on
first touch* per term: segments hold disjoint ascending docid ranges, so
compilation is concatenation of per-segment columns with tombstoned
entries filtered out.  When a term lives in a single segment untouched
by tombstones, the segment's own frozen list is returned zero-copy.

Bit-identity argument (why a snapshot ranks exactly like a from-scratch
rebuild of its live documents): scores depend only on per-document
term statistics and live-collection aggregates, both of which the
snapshot reproduces exactly; tie-breaks order by ascending docid, and
global docids are arrival positions, so the *relative* order of live
documents matches the dense ids a rebuild would assign.  Deleted ids
appear in no posting list, so the gaps are unobservable.
"""

from __future__ import annotations

from array import array
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import IndexError_
from ..index.analysis import Analyzer
from ..index.documents import StoredDocument
from ..index.postings import PostingList
from .segment import Segment

__all__ = ["Snapshot"]


class _SnapshotStore:
    """Read-only document store over the snapshot's live documents."""

    def __init__(self, snapshot: "Snapshot"):
        self._docs: Dict[int, StoredDocument] = {}
        self._by_external: Dict[str, StoredDocument] = {}
        self._ordered: List[StoredDocument] = []
        for segment in snapshot.segments:
            for doc in segment.live_documents(snapshot.tombstones):
                self._docs[doc.internal_id] = doc
                self._by_external[doc.external_id] = doc
                self._ordered.append(doc)
        self._lengths: Optional[List[int]] = None

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self) -> Iterator[StoredDocument]:
        return iter(self._ordered)

    def get(self, internal_id: int) -> StoredDocument:
        doc = self._docs.get(internal_id)
        if doc is None:
            raise IndexError_(f"unknown internal docid: {internal_id}")
        return doc

    def by_external_id(self, external_id: str) -> Optional[StoredDocument]:
        return self._by_external.get(external_id)

    def lengths(self) -> List[int]:
        """Dense ``len(d)`` column indexed by *global* docid.

        Tombstoned docids hold 0 — harmless, because deleted ids never
        appear in any posting list and therefore are never looked up.
        """
        if self._lengths is None:
            size = self._ordered[-1].internal_id + 1 if self._ordered else 0
            column = [0] * size
            for doc in self._ordered:
                column[doc.internal_id] = doc.length
            self._lengths = column
        return self._lengths


class _SegmentPartition:
    """One segment presented as a partition index for plan execution.

    :class:`~repro.core.operators.SegmentStatsResolve` runs the
    straightforward plan per segment and merges with ``StatsMerge`` —
    this view gives the plan the index interface it expects, scoped to
    one segment's documents.  Posting lists are the segment's own frozen
    columns (zero copy) unless tombstones land inside the segment, in
    which case the touched term's list is filtered on access.
    """

    committed = True

    def __init__(self, snapshot: "Snapshot", position: int, segment: Segment):
        self._snapshot = snapshot
        self._segment = segment
        self._dirty = position in snapshot._dirty_segments
        self._filtered: Dict[Tuple[str, str], PostingList] = {}
        self.analyzer = snapshot.analyzer
        self.predicate_analyzer = snapshot.predicate_analyzer
        self.searchable_fields = snapshot.searchable_fields
        self.predicate_field = snapshot.predicate_field
        self.segment_size = snapshot.segment_size

    @property
    def store(self):
        # Global docids: the snapshot's store resolves any live document,
        # including this segment's.
        return self._snapshot.store

    def document_lengths(self) -> List[int]:
        # Dense by global docid, so per-segment plans can index it with
        # the segment's own (global) postings directly.
        return self._snapshot.document_lengths()

    def _resolve(self, term: str, space: str) -> PostingList:
        plist = getattr(self._segment, space).get(term)
        if plist is None or not len(plist):
            return self._snapshot._empty
        if not self._dirty:
            return plist
        key = (space, term)
        filtered = self._filtered.get(key)
        if filtered is None:
            tombstones = self._snapshot.tombstones
            ids = array("q")
            tfs = array("q")
            for doc_id, tf in zip(plist.doc_ids, plist.tfs):
                if doc_id not in tombstones:
                    ids.append(doc_id)
                    tfs.append(tf)
            if not ids:
                filtered = self._snapshot._empty
            else:
                filtered = PostingList.from_arrays(
                    term, ids, tfs,
                    segment_size=self.segment_size, validate=False,
                )
            self._filtered[key] = filtered
        return filtered

    def postings(self, term: str) -> PostingList:
        return self._resolve(term, "content")

    def predicate_postings(self, term: str) -> PostingList:
        return self._resolve(term, "predicates")

    def document_frequency(self, term: str) -> int:
        return len(self.postings(term))

    def predicate_frequency(self, term: str) -> int:
        return len(self.predicate_postings(term))

    @property
    def num_docs(self) -> int:
        return len(self._segment.live_documents(self._snapshot.tombstones))

    def __repr__(self) -> str:
        return f"_SegmentPartition({self._segment.segment_id!r})"


class Snapshot:
    """An immutable, versioned read view over segments + tombstones."""

    def __init__(
        self,
        segments: Sequence[Segment],
        tombstones: FrozenSet[int],
        version: int,
        analyzer: Analyzer,
        predicate_analyzer: Analyzer,
        searchable_fields: Sequence[str],
        predicate_field: str,
        segment_size: int,
    ):
        self.segments: Tuple[Segment, ...] = tuple(segments)
        for before, after in zip(self.segments, self.segments[1:]):
            if after.min_doc_id <= before.max_doc_id:
                raise IndexError_(
                    f"snapshot segments out of order: {after.segment_id!r} "
                    f"does not follow {before.segment_id!r}"
                )
        self.tombstones = tombstones
        self.version = version
        self.analyzer = analyzer
        self.predicate_analyzer = predicate_analyzer
        self.searchable_fields = tuple(searchable_fields)
        self.predicate_field = predicate_field
        self.segment_size = segment_size
        # Which segments any tombstone actually lands in, precomputed so
        # the per-term compile can take the zero-copy path for the rest.
        self._dirty_segments = frozenset(
            idx
            for idx, segment in enumerate(self.segments)
            if any(
                segment.min_doc_id <= t <= segment.max_doc_id
                for t in tombstones
            )
        )
        self.store = _SnapshotStore(self)
        self._total_length = sum(doc.length for doc in self.store)
        self._content_cache: Dict[str, PostingList] = {}
        self._predicate_cache: Dict[str, PostingList] = {}
        self._empty = PostingList.from_pairs("", (), segment_size=segment_size)

    # -- index interface: statistics -------------------------------------

    committed = True

    @property
    def epoch(self) -> int:
        """The snapshot's version — the single epoch source caches read."""
        return self.version

    def __len__(self) -> int:
        return len(self.store)

    @property
    def num_docs(self) -> int:
        """Live ``|D|``: sealed documents minus tombstoned ones."""
        return len(self.store)

    @property
    def total_length(self) -> int:
        """Live ``len(D)``."""
        return self._total_length

    def document_frequency(self, term: str) -> int:
        return len(self.postings(term))

    def predicate_frequency(self, term: str) -> int:
        return len(self.predicate_postings(term))

    def document_lengths(self) -> List[int]:
        return self.store.lengths()

    def average_document_length(self) -> float:
        if not self.store:
            return 0.0
        return self._total_length / len(self.store)

    @property
    def vocabulary(self) -> Sequence[str]:
        terms = set()
        for segment in self.segments:
            terms.update(segment.content)
        return tuple(terms)

    @property
    def predicate_vocabulary(self) -> Sequence[str]:
        terms = set()
        for segment in self.segments:
            terms.update(segment.predicates)
        return tuple(terms)

    # -- index interface: postings ---------------------------------------

    def postings(self, term: str) -> PostingList:
        """Compiled content posting list for ``term`` across all segments."""
        plist = self._content_cache.get(term)
        if plist is None:
            plist = self._compile(term, "content")
            self._content_cache[term] = plist
        return plist

    def predicate_postings(self, term: str) -> PostingList:
        """Compiled predicate posting list for ``term``."""
        plist = self._predicate_cache.get(term)
        if plist is None:
            plist = self._compile(term, "predicates")
            self._predicate_cache[term] = plist
        return plist

    def prefetch(
        self, terms: Iterable[str], predicates: Iterable[str] = ()
    ) -> Dict[str, PostingList]:
        """Compile many lists in one pass (batch-executor warm-up)."""
        fetched = {term: self.postings(term) for term in terms}
        for term in predicates:
            fetched[term] = self.predicate_postings(term)
        return fetched

    def _compile(self, term: str, space: str) -> PostingList:
        """Concatenate ``term``'s per-segment columns, minus tombstones.

        Segments cover disjoint ascending docid ranges, so the
        concatenation is already sorted — ``from_arrays`` adopts it
        without validation.  Single clean contributor → zero copy.
        """
        contributors: List[Tuple[int, PostingList]] = []
        for idx, segment in enumerate(self.segments):
            plist = getattr(segment, space).get(term)
            if plist is not None and len(plist):
                contributors.append((idx, plist))
        if not contributors:
            return self._empty
        if len(contributors) == 1:
            idx, plist = contributors[0]
            if idx not in self._dirty_segments:
                return plist
        ids = array("q")
        tfs = array("q")
        tombstones = self.tombstones
        for idx, plist in contributors:
            if idx in self._dirty_segments:
                for doc_id, tf in zip(plist.doc_ids, plist.tfs):
                    if doc_id not in tombstones:
                        ids.append(doc_id)
                        tfs.append(tf)
            else:
                ids.extend(plist.doc_ids)
                tfs.extend(plist.tfs)
        if not ids:
            return self._empty
        return PostingList.from_arrays(
            term, ids, tfs, segment_size=self.segment_size, validate=False
        )

    def close(self) -> None:
        """Drop this snapshot's compiled-posting caches (idempotent).

        Snapshots own no file handles — segments do — so closing one
        only releases the memory its per-term compile cache pinned.
        The serving layer calls this on superseded snapshots after an
        epoch bump; in-flight queries holding references to already
        compiled lists are unaffected (the lists are plain arrays).
        """
        self._content_cache.clear()
        self._predicate_cache.clear()

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def partitions(self) -> List[_SegmentPartition]:
        """Per-segment index views for partitioned statistics resolution.

        Consumed by :class:`~repro.core.operators.SegmentStatsResolve`:
        each view scopes the straightforward plan to one segment, and
        the per-segment results merge exactly because every supported
        statistic is additive over the disjoint docid ranges.
        """
        return [
            _SegmentPartition(self, position, segment)
            for position, segment in enumerate(self.segments)
        ]

    # -- diagnostics ------------------------------------------------------

    def segment_summary(self) -> List[Dict[str, object]]:
        """Per-segment description for ``info``/health endpoints."""
        summary = []
        for segment in self.segments:
            live = len(segment.live_documents(self.tombstones))
            summary.append(
                {
                    "segment_id": segment.segment_id,
                    "docs": segment.num_docs,
                    "live_docs": live,
                    "doc_id_range": [segment.min_doc_id, segment.max_doc_id],
                    "total_length": segment.total_length,
                    "ephemeral": segment.ephemeral,
                }
            )
        return summary

    def __repr__(self) -> str:
        return (
            f"Snapshot(version={self.version}, segments={len(self.segments)}, "
            f"live_docs={len(self.store)}, tombstones={len(self.tombstones)})"
        )
