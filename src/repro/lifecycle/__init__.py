"""The segmented index lifecycle: memtable → WAL → segments → compaction.

An index under this package is a **set of immutable segments plus one
in-memory memtable** (the Lucene/LSM shape every compact-index paper
assumes):

* writes — document adds *and* tombstone-based deletes — go to the
  memtable and an append-only JSON-lines WAL
  (:class:`~repro.lifecycle.wal.WriteAheadLog`);
* :meth:`~repro.lifecycle.index.SegmentedIndex.flush` seals the memtable
  into an immutable :class:`~repro.lifecycle.segment.Segment` with
  precompiled postings and per-segment statistics;
* :meth:`~repro.lifecycle.index.SegmentedIndex.compact` merges segments
  size-tiered and physically drops tombstoned documents;
* reads execute against an immutable
  :class:`~repro.lifecycle.snapshot.Snapshot` (segment list + tombstone
  set + monotonic version), so concurrent serving never observes a
  half-applied mutation;
* the snapshot version — one
  :class:`~repro.lifecycle.version.VersionClock` per index — is the
  single epoch source every cache in the system consumes.

Exports resolve lazily (PEP 562) because :mod:`repro.index` imports the
version clock from here; eager re-exports would be circular.
"""

from __future__ import annotations

_EXPORTS = {
    "VersionClock": "version",
    "WriteAheadLog": "wal",
    "replay_wal": "wal",
    "Memtable": "memtable",
    "Segment": "segment",
    "Snapshot": "snapshot",
    "SegmentedIndex": "index",
    "CompactionReport": "index",
    "SegmentStorage": "storage",
    "LifecycleEngine": "engine",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
