"""Append-only write-ahead log for the segmented index.

Every mutation (document add, tombstone delete) is one JSON line,
flushed before the in-memory state changes, so a crash between manifest
commits loses nothing: recovery is *manifest load + WAL replay*
(:meth:`repro.lifecycle.index.SegmentedIndex.open`).

The log stores **raw** documents (external id + raw field text), not
analysed token streams: replay re-runs the same deterministic analyzers
the live ingest ran, so a replayed collection is bit-identical to the
original — and the log stays independent of analyzer internals.

Torn writes are expected: a crash can leave a half-written final line.
:func:`replay_wal` tolerates exactly that case (an undecodable *last*
line is discarded as an uncommitted mutation); garbage anywhere earlier
is real corruption and surfaces as a
:class:`~repro.storage.StorageError` naming the file and line.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..errors import ReproError
from ..index.documents import Document

__all__ = ["WriteAheadLog", "replay_wal"]

PathLike = Union[str, Path]

OP_ADD = "add"
OP_DELETE = "delete"


def _storage_error(message: str):
    from ..storage import StorageError

    return StorageError(message)


class WriteAheadLog:
    """One append-only JSON-lines file of uncommitted mutations."""

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._handle = None

    # -- writes ----------------------------------------------------------

    def _writer(self):
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def _append(self, record: dict) -> None:
        handle = self._writer()
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()

    def log_add(self, document: Document) -> None:
        """Record one document insertion (raw fields, pre-analysis)."""
        self._append(
            {
                "op": OP_ADD,
                "doc_id": document.doc_id,
                "fields": dict(document.fields),
            }
        )

    def log_delete(self, external_id: str) -> None:
        """Record one tombstone delete."""
        self._append({"op": OP_DELETE, "doc_id": external_id})

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Truncate the log (called after every manifest commit: the
        manifest now owns everything the log described)."""
        self.close()
        with open(self.path, "w", encoding="utf-8"):
            pass

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __len__(self) -> int:
        """Number of replayable records currently in the log."""
        return len(replay_wal(self.path))


def replay_wal(path: PathLike) -> List[dict]:
    """Read every committed record from a WAL file.

    Returns ``[]`` for a missing or empty file (a fresh directory).  An
    undecodable **final** line is a torn write from a crash and is
    dropped; an undecodable earlier line, or a record without a
    recognised ``op``, raises a readable
    :class:`~repro.storage.StorageError` naming the file and line.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        raw_lines = path.read_text(encoding="utf-8").split("\n")
    except (OSError, UnicodeDecodeError) as exc:
        raise _storage_error(f"unreadable WAL {path}: {exc}") from None
    records: List[dict] = []
    lines = [line for line in raw_lines if line.strip()]
    for number, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except ValueError:
            if number == len(lines):
                break  # torn final write: the mutation never committed
            raise _storage_error(
                f"corrupt WAL {path}: undecodable record at line {number}"
            ) from None
        op = record.get("op")
        if op not in (OP_ADD, OP_DELETE) or "doc_id" not in record:
            raise _storage_error(
                f"corrupt WAL {path}: unknown record {record!r} "
                f"at line {number}"
            )
        records.append(record)
    return records
