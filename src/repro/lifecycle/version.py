"""The single mutation clock every freshness consumer reads.

Before the segment lifecycle landed, collection freshness was tracked by
ad-hoc epoch counters scattered across the stack: ``InvertedIndex``
bumped a private ``_epoch`` in ``append_documents``, the sharded index
summed its shards' counters, and the statistics/serving caches each kept
their own "last seen" copy of whichever counter their engine happened to
expose.  The lifecycle refactor collapses all of that onto one source:

* every mutable index owns exactly one :class:`VersionClock`;
* every committed mutation (document batch, delete, flush, compaction)
  is one :meth:`VersionClock.advance`;
* every read runs against a :class:`~repro.lifecycle.snapshot.Snapshot`
  stamped with the clock value at creation, and every cache keys or
  guards its entries with that same value (``engine.epoch``).

The clock is monotonic and thread-safe: concurrent mutators serialise on
the internal lock, and a reader that observes version ``v`` is
guaranteed that any entry stamped ``v`` was computed from a collection
state no older than the last mutation counted into ``v``.
"""

from __future__ import annotations

import threading

__all__ = ["VersionClock"]


class VersionClock:
    """A thread-safe monotonic counter; one per mutable index."""

    __slots__ = ("_lock", "_version")

    def __init__(self, start: int = 0):
        self._lock = threading.Lock()
        self._version = start

    @property
    def version(self) -> int:
        """The current version (reads are atomic in CPython)."""
        return self._version

    def advance(self) -> int:
        """Count one committed mutation; returns the new version."""
        with self._lock:
            self._version += 1
            return self._version

    def advance_to(self, version: int) -> int:
        """Fast-forward to at least ``version`` (manifest recovery)."""
        with self._lock:
            if version > self._version:
                self._version = version
            return self._version

    def __repr__(self) -> str:
        return f"VersionClock(version={self._version})"
