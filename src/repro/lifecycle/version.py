"""Deprecated shim: :class:`VersionClock` moved to :mod:`repro.core.backend`.

The clock started life here when the segment lifecycle landed (one
monotonic counter per mutable index, every cache guarding on it).  The
unified-backend refactor promoted it to the system-wide coherence
module — :mod:`repro.core.backend` now owns the clock, the
:class:`~repro.core.backend.VersionVector` built from it, and the
version-mutation discipline CI enforces.  Import from there; this
module re-exports the name so existing call sites keep working.
"""

from __future__ import annotations

from ..core.backend import VersionClock

__all__ = ["VersionClock"]
