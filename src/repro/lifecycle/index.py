"""The segmented index: WAL-backed ingest, flush, compaction, snapshots.

:class:`SegmentedIndex` is the mutable coordinator of the lifecycle: one
in-memory :class:`~repro.lifecycle.memtable.Memtable`, a list of
immutable :class:`~repro.lifecycle.segment.Segment` objects, a global
tombstone set, and the one :class:`~repro.lifecycle.version.VersionClock`
the whole serving stack keys freshness on.

Mutations (:meth:`add_documents`, :meth:`delete_documents`) hit the WAL
before memory, so recovery (:meth:`open`) is *manifest load + WAL
replay* and loses at most a torn final record that was never
acknowledged.  :meth:`flush` seals the memtable into a segment;
:meth:`compact` merges adjacent size-tiered segment runs and physically
drops tombstoned documents.  Every committed mutation ticks the clock,
and :meth:`snapshot` hands out an immutable
:class:`~repro.lifecycle.snapshot.Snapshot` of the state at the current
tick (cached per version — concurrent readers share one snapshot
object).

Bit-identity across the whole lifecycle: docids are arrival positions
and survive flush/compaction unchanged, analysis happens exactly once
per add with the same routine a monolithic build uses (WAL replay
re-runs it deterministically), and deleted docids vanish from every
posting list — so a ranking computed at any lifecycle point equals the
ranking of a from-scratch :class:`~repro.index.inverted_index.InvertedIndex`
over the currently-live documents.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..errors import IndexError_
from ..index.analysis import Analyzer, KeywordAnalyzer
from ..index.documents import Document, StoredDocument
from ..index.inverted_index import (
    DEFAULT_PREDICATE_FIELD,
    DEFAULT_SEARCHABLE_FIELDS,
)
from ..index.postings import DEFAULT_SEGMENT_SIZE
from .memtable import Memtable
from .segment import Segment
from .snapshot import Snapshot
from .storage import SEGMENT_FORMAT_VERSION, SegmentStorage
from .version import VersionClock
from .wal import OP_ADD, WriteAheadLog, replay_wal

__all__ = ["SegmentedIndex", "CompactionReport"]

# Default memtable size (documents) above which auto_flush seals.
DEFAULT_FLUSH_THRESHOLD = 1000

# Size-tiering: adjacent segments whose live-doc counts fall in the same
# power-of-`TIER_BASE` bucket are merge candidates.
TIER_BASE = 4


@dataclass
class CompactionReport:
    """What one :meth:`SegmentedIndex.compact` call did."""

    merged: List[List[str]] = field(default_factory=list)
    created: List[str] = field(default_factory=list)
    dropped_documents: int = 0
    segments_before: int = 0
    segments_after: int = 0

    @property
    def changed(self) -> bool:
        return bool(self.merged) or self.dropped_documents > 0


class SegmentedIndex:
    """Mutable segmented index with snapshot-isolated reads.

    ``directory=None`` gives a purely in-memory index (no WAL, no
    manifest) with identical semantics — the shape unit tests and
    short-lived tools use.
    """

    def __init__(
        self,
        directory=None,
        analyzer: Optional[Analyzer] = None,
        predicate_analyzer: Optional[Analyzer] = None,
        searchable_fields: Sequence[str] = DEFAULT_SEARCHABLE_FIELDS,
        predicate_field: str = DEFAULT_PREDICATE_FIELD,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
        storage_format: int = SEGMENT_FORMAT_VERSION,
    ):
        self.analyzer = analyzer if analyzer is not None else Analyzer()
        self.predicate_analyzer = (
            predicate_analyzer
            if predicate_analyzer is not None
            else KeywordAnalyzer()
        )
        self.searchable_fields = tuple(searchable_fields)
        self.predicate_field = predicate_field
        self.segment_size = segment_size
        self.flush_threshold = flush_threshold

        self._lock = threading.RLock()
        self._clock = VersionClock()
        self._segments: List[Segment] = []
        self._tombstones: set = set()
        # external id → internal docid for every live document (segments
        # and memtable alike): the delete path's routing table.
        self._live: Dict[str, int] = {}
        self._next_segment_number = 0
        self._dirty = False  # uncommitted state since the last manifest
        self._snapshot_cache: Optional[Snapshot] = None

        self._storage: Optional[SegmentStorage] = None
        self._wal: Optional[WriteAheadLog] = None
        self._memtable = self._new_memtable(0)
        if directory is not None:
            self._storage = SegmentStorage(
                directory, segment_format=storage_format
            )
            self._wal = WriteAheadLog(
                self._storage.wal_path(self._storage.default_wal_name())
            )
            # A directory can hold acknowledged mutations that never made
            # it to a first manifest commit (crash before any flush).
            # They live in the default WAL generation; replay them.
            records = replay_wal(self._wal.path)
            for record in records:
                if record["op"] == OP_ADD:
                    self._apply_add(
                        Document(record["doc_id"], record["fields"])
                    )
                else:
                    self._apply_delete(record["doc_id"])
            if records:
                self._clock.advance()
                self._dirty = True

    # -- construction / recovery -----------------------------------------

    @classmethod
    def open(
        cls,
        directory,
        analyzer: Optional[Analyzer] = None,
        predicate_analyzer: Optional[Analyzer] = None,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
        storage_format: int = SEGMENT_FORMAT_VERSION,
    ) -> "SegmentedIndex":
        """Open (or create) a segmented index directory.

        Crash recovery in two steps: load the manifest's committed state
        (precompiled segments — O(postings), no re-tokenisation), then
        replay the live WAL generation through the ordinary mutation
        paths, which reproduces the pre-crash memtable and tombstones
        bit-identically.  Analyzer arguments matter only for a fresh or
        replayed corpus and must match what built the directory.
        """
        storage = SegmentStorage(directory, segment_format=storage_format)
        state = storage.load()
        if state is None:
            return cls(
                directory=directory,
                analyzer=analyzer,
                predicate_analyzer=predicate_analyzer,
                flush_threshold=flush_threshold,
                storage_format=storage_format,
            )
        index = cls.__new__(cls)
        index.analyzer = analyzer if analyzer is not None else Analyzer()
        index.predicate_analyzer = (
            predicate_analyzer
            if predicate_analyzer is not None
            else KeywordAnalyzer()
        )
        config = state.config
        index.searchable_fields = tuple(
            config.get("searchable_fields", DEFAULT_SEARCHABLE_FIELDS)
        )
        index.predicate_field = config.get(
            "predicate_field", DEFAULT_PREDICATE_FIELD
        )
        index.segment_size = config.get("segment_size", DEFAULT_SEGMENT_SIZE)
        index.flush_threshold = flush_threshold

        index._lock = threading.RLock()
        index._clock = VersionClock()
        index._clock.advance_to(state.version)
        index._segments = list(state.segments)
        index._tombstones = set(state.tombstones)
        index._live = {}
        for segment in index._segments:
            for doc in segment.live_documents(index._tombstones):
                index._live[doc.external_id] = doc.internal_id
        index._next_segment_number = state.next_segment_number
        index._dirty = False
        index._snapshot_cache = None
        index._storage = storage
        index._wal = WriteAheadLog(storage.wal_path(state.wal_name))
        index._memtable = index._new_memtable(state.next_doc_id)

        records = replay_wal(index._wal.path)
        for record in records:
            if record["op"] == OP_ADD:
                index._apply_add(
                    Document(record["doc_id"], record["fields"])
                )
            else:
                index._apply_delete(record["doc_id"])
        if records:
            index._clock.advance()
            index._dirty = True
        return index

    def _new_memtable(self, next_doc_id: int) -> Memtable:
        return Memtable(
            self.analyzer,
            self.predicate_analyzer,
            self.searchable_fields,
            self.predicate_field,
            next_doc_id=next_doc_id,
        )

    # -- mutations --------------------------------------------------------

    def add_documents(
        self, documents: Iterable[Document], auto_flush: bool = False
    ) -> List[StoredDocument]:
        """WAL-log and buffer a batch of documents (one clock tick).

        ``auto_flush=True`` seals the memtable whenever it crosses
        ``flush_threshold`` documents (bulk-ingest convenience).
        """
        documents = list(documents)
        with self._lock:
            stored: List[StoredDocument] = []
            for document in documents:
                if self._wal is not None:
                    self._wal.log_add(document)
                stored.append(self._apply_add(document))
                if auto_flush and len(self._memtable) >= self.flush_threshold:
                    self.flush()
            if documents:
                self._clock.advance()
                self._dirty = True
            return stored

    def delete_documents(self, external_ids: Iterable[str]) -> int:
        """WAL-log and apply tombstone deletes (one clock tick).

        Unknown ids raise :class:`~repro.errors.IndexError_` before
        anything is logged, so a failed call mutates nothing.
        """
        external_ids = list(external_ids)
        with self._lock:
            missing = [e for e in external_ids if e not in self._live]
            if missing:
                raise IndexError_(
                    f"cannot delete unknown document ids: {missing!r}"
                )
            for external_id in external_ids:
                if self._wal is not None:
                    self._wal.log_delete(external_id)
                self._apply_delete(external_id)
            if external_ids:
                self._clock.advance()
                self._dirty = True
            return len(external_ids)

    def _apply_add(self, document: Document) -> StoredDocument:
        if document.doc_id in self._live:
            raise IndexError_(f"duplicate document id: {document.doc_id!r}")
        stored = self._memtable.add(document)
        self._live[document.doc_id] = stored.internal_id
        return stored

    def _apply_delete(self, external_id: str) -> None:
        internal = self._live.pop(external_id)
        if self._memtable.delete(external_id) is None:
            # Sealed in a segment: mark, drop physically at compaction.
            self._tombstones.add(internal)

    # -- lifecycle transitions --------------------------------------------

    def flush(self) -> Optional[Segment]:
        """Seal the memtable into an immutable segment and commit.

        Returns the new segment, or ``None`` when the memtable was empty
        (uncommitted tombstones still get persisted in that case).  The
        commit writes the segment file and manifest atomically and
        starts a fresh WAL generation — acknowledged mutations are now
        owned by the manifest, not the log.
        """
        with self._lock:
            segment = None
            if len(self._memtable):
                segment = Segment.build(
                    self._next_segment_id(),
                    self._memtable.documents(),
                    self.searchable_fields,
                    self.predicate_field,
                    segment_size=self.segment_size,
                )
                self._segments.append(segment)
                self._memtable = self._new_memtable(self._memtable.next_doc_id)
                self._clock.advance()
            if self._dirty or segment is not None:
                self._commit()
            return segment

    def compact(self, full: bool = False) -> CompactionReport:
        """Merge size-tiered adjacent segment runs; drop tombstones.

        ``full=True`` merges everything into one segment regardless of
        tiering.  The memtable is flushed first, so compaction always
        operates on sealed state.  Merged segments physically shed their
        tombstoned documents; the corresponding tombstones leave the
        global set.  One clock tick if anything changed.
        """
        with self._lock:
            self.flush()
            report = CompactionReport(segments_before=len(self._segments))
            runs = (
                [list(range(len(self._segments)))]
                if full
                else self._tiered_runs()
            )
            changed = False
            new_segments: List[Segment] = []
            consumed: set = set()
            run_by_start = {
                run[0]: run for run in runs if run and self._run_useful(run)
            }
            i = 0
            while i < len(self._segments):
                run = run_by_start.get(i)
                if run is None:
                    if i not in consumed:
                        new_segments.append(self._segments[i])
                    i += 1
                    continue
                members = [self._segments[j] for j in run]
                consumed.update(run)
                live = sum(
                    len(s.live_documents(self._tombstones)) for s in members
                )
                dropped = sum(s.num_docs for s in members) - live
                report.merged.append([s.segment_id for s in members])
                report.dropped_documents += dropped
                if live:
                    merged = Segment.merge(
                        self._next_segment_id(),
                        members,
                        self._tombstones,
                        segment_size=self.segment_size,
                    )
                    new_segments.append(merged)
                    report.created.append(merged.segment_id)
                # Tombstones inside the merged range are now physical.
                for member in members:
                    for doc in member.documents:
                        self._tombstones.discard(doc.internal_id)
                changed = True
                i = run[-1] + 1
            if changed:
                self._segments = new_segments
                self._clock.advance()
                self._dirty = True
                self._commit()
            report.segments_after = len(self._segments)
            return report

    def _run_useful(self, run: List[int]) -> bool:
        """A run is worth merging if it joins segments or drops docs."""
        if len(run) > 1:
            return True
        segment = self._segments[run[0]]
        return any(
            segment.min_doc_id <= t <= segment.max_doc_id
            for t in self._tombstones
        )

    def _tiered_runs(self) -> List[List[int]]:
        """Size-tiered candidate runs over *adjacent* segments.

        Two neighbours belong to one run when their live-doc counts fall
        in the same power-of-``TIER_BASE`` bucket — the classic
        size-tiered policy restricted to adjacency, which compaction
        needs to preserve ascending docid ranges without renumbering.
        Single-segment runs survive only when they would physically drop
        tombstoned documents (see :meth:`_run_useful`).
        """

        def tier(index: int) -> int:
            live = len(self._segments[index].live_documents(self._tombstones))
            t = 0
            while live >= TIER_BASE:
                live //= TIER_BASE
                t += 1
            return t

        runs: List[List[int]] = []
        current: List[int] = []
        current_tier = None
        for i in range(len(self._segments)):
            t = tier(i)
            if current and t == current_tier:
                current.append(i)
            else:
                if current:
                    runs.append(current)
                current = [i]
                current_tier = t
        if current:
            runs.append(current)
        return runs

    def _next_segment_id(self) -> str:
        segment_id = f"seg-{self._next_segment_number:06d}"
        self._next_segment_number += 1
        return segment_id

    def _commit(self) -> None:
        """Persist segments + manifest; rotate the WAL generation."""
        if self._storage is None:
            self._dirty = False
            return
        wal_name = self._storage.commit(
            self._segments,
            self._tombstones,
            next_doc_id=self._memtable.next_doc_id,
            next_segment_number=self._next_segment_number,
            version=self._clock.version,
            config={
                "searchable_fields": list(self.searchable_fields),
                "predicate_field": self.predicate_field,
                "segment_size": self.segment_size,
            },
        )
        if self._wal is not None:
            self._wal.close()
        self._wal = WriteAheadLog(self._storage.wal_path(wal_name))
        self._dirty = False

    def close(self) -> None:
        """Release the WAL handle and every segment's backing reader.

        State stays on disk; the index object must not be used after
        closing (block-backed segments raise ``StorageError`` on any
        read that needs an undecoded block).  Idempotent.
        """
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        cached, self._snapshot_cache = self._snapshot_cache, None
        if cached is not None:
            cached.close()
        for segment in self._segments:
            segment.close()

    def __enter__(self) -> "SegmentedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reads ------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """The immutable read view at the current version (cached).

        An unflushed memtable is made searchable by sealing its live
        documents into an *ephemeral* segment — compiled like a real
        one, never persisted — so reads always see acknowledged writes.
        """
        with self._lock:
            version = self._clock.version
            cached = self._snapshot_cache
            if cached is not None and cached.version == version:
                return cached
            segments = list(self._segments)
            if len(self._memtable):
                segments.append(
                    Segment.build(
                        "memtable",
                        self._memtable.documents(),
                        self.searchable_fields,
                        self.predicate_field,
                        segment_size=self.segment_size,
                        ephemeral=True,
                    )
                )
            snapshot = Snapshot(
                segments,
                frozenset(self._tombstones),
                version,
                self.analyzer,
                self.predicate_analyzer,
                self.searchable_fields,
                self.predicate_field,
                self.segment_size,
            )
            self._snapshot_cache = snapshot
            return snapshot

    @property
    def epoch(self) -> int:
        """The single version clock every cache in the system consumes."""
        return self._clock.version

    def bump_version(self) -> int:
        """Advance the version clock without a data mutation.

        A catalog hot-swap changes *how* statistics are resolved (never
        what they are), but every epoch-guarded cache and the per-version
        engine cache key on this clock — bumping it is what makes the
        swap a snapshot-version boundary.  Marks the index dirty so the
        new version reaches the manifest on the next commit.
        """
        with self._lock:
            self._clock.advance()
            self._dirty = True
            return self._clock.version

    committed = True

    def __len__(self) -> int:
        return len(self._live)

    @property
    def num_docs(self) -> int:
        """Live document count (memtable + segments − tombstones)."""
        return len(self._live)

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def get_document(self, external_id: str) -> Optional[StoredDocument]:
        """Look up one live document by external id."""
        with self._lock:
            stored = self._memtable.get(external_id)
            if stored is not None:
                return stored
            internal = self._live.get(external_id)
            if internal is None:
                return None
            for segment in self._segments:
                if segment.min_doc_id <= internal <= segment.max_doc_id:
                    for doc in segment.documents:
                        if doc.internal_id == internal:
                            return doc
            return None

    def info(self) -> dict:
        """Operational summary (the CLI's ``info`` subcommand body)."""
        with self._lock:
            snapshot = self.snapshot()
            return {
                "directory": (
                    str(self._storage.directory) if self._storage else None
                ),
                "version": self._clock.version,
                "live_docs": len(self._live),
                "memtable_docs": len(self._memtable),
                "tombstones": len(self._tombstones),
                "next_doc_id": self._memtable.next_doc_id,
                "segments": snapshot.segment_summary(),
                "wal_records": (
                    len(replay_wal(self._wal.path)) if self._wal else 0
                ),
                "storage": self._storage_info(),
            }

    def _storage_info(self) -> Optional[dict]:
        """On-disk footprint per segment file (``None`` when in-memory)."""
        if self._storage is None:
            return None
        from .storage import SEGMENT_DIR

        files = []
        total_bytes = 0
        total_docs = 0
        for segment in self._segments:
            name = self._storage._segment_file_name(segment.segment_id)
            path = self._storage.directory / SEGMENT_DIR / name
            try:
                size = path.stat().st_size
            except OSError:
                # Not yet committed (e.g. flushed but crash before
                # manifest) — report what is actually on disk.
                continue
            files.append(
                {
                    "segment_id": segment.segment_id,
                    "file": name,
                    "format": 4 if name.endswith(".seg") else 3,
                    "bytes": size,
                    "num_docs": segment.num_docs,
                }
            )
            total_bytes += size
            total_docs += segment.num_docs
        return {
            "segment_format": self._storage.segment_format,
            "codec": (
                "block-v4" if self._storage.segment_format == 4 else "json-v3"
            ),
            "files": files,
            "total_bytes": total_bytes,
            "bytes_per_doc": (
                round(total_bytes / total_docs, 2) if total_docs else 0.0
            ),
        }

    def __repr__(self) -> str:
        return (
            f"SegmentedIndex(segments={len(self._segments)}, "
            f"memtable={len(self._memtable)}, live={len(self._live)}, "
            f"version={self._clock.version})"
        )
