"""Immutable sealed segments: the unit of storage, merge, and read.

A segment is a frozen slice of the collection: the stored documents that
were in the memtable when :meth:`~repro.lifecycle.index.SegmentedIndex.flush`
ran, plus fully-compiled content/predicate posting lists and the
per-segment statistics (cardinality, token total) that the statistics
merge layer folds into snapshot-wide values.

Two invariants make segments composable without re-sorting anything:

* **Disjoint ascending docid ranges.**  Docids are global arrival
  positions and segments seal in arrival order, so segment *k+1*'s
  smallest docid exceeds segment *k*'s largest.  Snapshot posting
  compilation is therefore plain per-term concatenation, and compaction
  of *adjacent* segments is plain per-term array filtering — neither
  ever sorts or renumbers.
* **Immutability.**  Once built, a segment never changes; deletes are
  tombstones held next to the segment list, applied at read time and
  dropped physically only when compaction rewrites the segment.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..errors import IndexError_
from ..index.documents import StoredDocument
from ..index.inverted_index import content_term_frequencies
from ..index.postings import DEFAULT_SEGMENT_SIZE, PostingList

__all__ = ["Segment"]


class Segment:
    """One immutable slice of the collection with precompiled postings."""

    __slots__ = (
        "segment_id",
        "documents",
        "content",
        "predicates",
        "segment_size",
        "min_doc_id",
        "max_doc_id",
        "total_length",
        "ephemeral",
        "_source",
    )

    def __init__(
        self,
        segment_id: str,
        documents: Sequence[StoredDocument],
        content: Dict[str, PostingList],
        predicates: Dict[str, PostingList],
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        ephemeral: bool = False,
    ):
        if not documents:
            raise IndexError_(f"segment {segment_id!r} cannot be empty")
        self.segment_id = segment_id
        self.documents: Tuple[StoredDocument, ...] = tuple(documents)
        self.content = content
        self.predicates = predicates
        self.segment_size = segment_size
        self.min_doc_id = self.documents[0].internal_id
        self.max_doc_id = self.documents[-1].internal_id
        self.total_length = sum(doc.length for doc in self.documents)
        # Ephemeral segments are snapshot-time seals of the live memtable:
        # they make unflushed writes searchable but are never persisted.
        self.ephemeral = ephemeral
        # The mmap-backed reader this segment decodes from, when it was
        # loaded from a block-format (v4) file; owned by the segment.
        self._source = None

    def attach_source(self, source) -> None:
        """Adopt the block-file reader backing this segment's lazy lists."""
        self._source = source

    def close(self) -> None:
        """Release the backing reader, if any (idempotent).

        In-memory segments (freshly built, merged, or decoded from JSON
        payloads) hold no resources and close as a no-op.
        """
        source, self._source = self._source, None
        if source is not None:
            source.close()

    # -- construction ----------------------------------------------------

    @classmethod
    def build(
        cls,
        segment_id: str,
        documents: Sequence[StoredDocument],
        searchable_fields: Sequence[str],
        predicate_field: str,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        ephemeral: bool = False,
    ) -> "Segment":
        """Compile a segment from analysed documents (ascending docids).

        This is the seal step of ``flush``: one pass over the documents
        accumulates docid/tf columns per term (docids already arrive
        sorted, so the columns freeze without validation), exactly the
        posting-construction rule of the flat index — which is what
        keeps segment reads bit-identical to a monolithic rebuild.
        """
        content_acc: Dict[str, Tuple[array, array]] = {}
        predicate_acc: Dict[str, array] = {}
        previous = None
        for stored in documents:
            if previous is not None and stored.internal_id <= previous:
                raise IndexError_(
                    f"segment {segment_id!r}: docids must ascend "
                    f"({stored.internal_id} after {previous})"
                )
            previous = stored.internal_id
            tf_counts = content_term_frequencies(
                stored.field_tokens, searchable_fields
            )
            for term, tf in tf_counts.items():
                columns = content_acc.get(term)
                if columns is None:
                    columns = (array("q"), array("q"))
                    content_acc[term] = columns
                columns[0].append(stored.internal_id)
                columns[1].append(tf)
            for term in set(stored.field_tokens.get(predicate_field, ())):
                column = predicate_acc.get(term)
                if column is None:
                    column = array("q")
                    predicate_acc[term] = column
                column.append(stored.internal_id)
        content = {
            term: PostingList.from_arrays(
                term, ids, tfs, segment_size=segment_size, validate=False
            )
            for term, (ids, tfs) in content_acc.items()
        }
        predicates = {
            term: PostingList.from_arrays(
                term,
                ids,
                array("q", [1]) * len(ids),
                segment_size=segment_size,
                validate=False,
            )
            for term, ids in predicate_acc.items()
        }
        return cls(
            segment_id,
            documents,
            content,
            predicates,
            segment_size=segment_size,
            ephemeral=ephemeral,
        )

    @classmethod
    def merge(
        cls,
        segment_id: str,
        segments: Sequence["Segment"],
        tombstones: Set[int],
        segment_size: int = DEFAULT_SEGMENT_SIZE,
    ) -> "Segment":
        """Merge *adjacent* segments, physically dropping tombstoned docs.

        Adjacency (caller-guaranteed: the segments cover consecutive
        docid ranges in order) means merged posting columns are the
        concatenation of the inputs' columns minus tombstoned entries —
        an O(postings) array filter, no re-tokenisation, no sort.  The
        surviving documents keep their global docids; the gaps left by
        dropped docs are invisible to ranking because no posting refers
        to them.
        """
        if not segments:
            raise IndexError_("segment merge needs at least one input")
        for before, after in zip(segments, segments[1:]):
            if after.min_doc_id <= before.max_doc_id:
                raise IndexError_(
                    f"segment merge requires adjacent ascending inputs; "
                    f"{after.segment_id!r} overlaps {before.segment_id!r}"
                )
        documents = [
            doc
            for segment in segments
            for doc in segment.documents
            if doc.internal_id not in tombstones
        ]
        if not documents:
            raise IndexError_(
                f"segment merge of {[s.segment_id for s in segments]} "
                "would be empty (caller should drop instead)"
            )
        content = _merge_posting_maps(
            (segment.content for segment in segments), tombstones, segment_size
        )
        predicates = _merge_posting_maps(
            (segment.predicates for segment in segments), tombstones, segment_size
        )
        return cls(
            segment_id, documents, content, predicates, segment_size=segment_size
        )

    # -- reads -----------------------------------------------------------

    @property
    def num_docs(self) -> int:
        return len(self.documents)

    def live_documents(self, tombstones: Set[int]) -> List[StoredDocument]:
        """Documents surviving the given tombstone set, docid order."""
        return [
            doc for doc in self.documents if doc.internal_id not in tombstones
        ]

    def __repr__(self) -> str:
        return (
            f"Segment(id={self.segment_id!r}, docs={self.num_docs}, "
            f"docids=[{self.min_doc_id}..{self.max_doc_id}]"
            f"{', ephemeral' if self.ephemeral else ''})"
        )


def _merge_posting_maps(
    posting_maps: Iterable[Dict[str, PostingList]],
    tombstones: Set[int],
    segment_size: int,
) -> Dict[str, PostingList]:
    """Concatenate per-term columns across maps, filtering tombstones."""
    merged: Dict[str, Tuple[array, array]] = {}
    for posting_map in posting_maps:
        for term, plist in posting_map.items():
            columns = merged.get(term)
            if columns is None:
                columns = (array("q"), array("q"))
                merged[term] = columns
            ids, tfs = columns
            if tombstones and any(d in tombstones for d in plist.doc_ids):
                for doc_id, tf in zip(plist.doc_ids, plist.tfs):
                    if doc_id not in tombstones:
                        ids.append(doc_id)
                        tfs.append(tf)
            else:
                # No deletions touch this list: one C-level extend.
                ids.extend(plist.doc_ids)
                tfs.extend(plist.tfs)
    return {
        term: PostingList.from_arrays(
            term, ids, tfs, segment_size=segment_size, validate=False
        )
        for term, (ids, tfs) in merged.items()
        if len(ids)
    }
