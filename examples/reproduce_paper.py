"""Reproduce every paper experiment and write an EXPERIMENTS-style report.

By default runs a quick (few-minute) configuration; ``--full`` uses the
benchmark-scale configuration the repository's EXPERIMENTS.md was
generated with (~15–25 minutes).

Run:  python examples/reproduce_paper.py [--full] [--out report.md]
"""

import argparse

from repro.experiments import ExperimentConfig, run_all, write_report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="benchmark-scale run (12k docs, 50 queries/point)",
    )
    parser.add_argument(
        "--out",
        default="reproduction_report.md",
        help="where to write the Markdown report",
    )
    args = parser.parse_args()

    config = ExperimentConfig() if args.full else ExperimentConfig.quick()
    report = run_all(config, progress=True)
    path = write_report(report, args.out)

    print(f"\nreport written to {path}")
    print("verdicts:")
    for name, ok in report.verdicts():
        print(f"  {'✓' if ok else '✗'} {name}")
    return 0 if report.all_shapes_hold else 1


if __name__ == "__main__":
    raise SystemExit(main())
