"""Quickstart: index a handful of citations and run a context-sensitive query.

Recreates the paper's Section 1.1 example: the query {pancreas, leukemia}
ranks differently inside the "digestive system" context than it does
globally, because "leukemia" is rare (hence discriminative) among
digestive-system citations while "pancreas" is commonplace there.

Run:  python examples/quickstart.py
"""

from repro import ContextSearchEngine, Document, build_index, parse_query

CITATIONS = [
    Document(
        "C1",
        {
            "title": "Complications following pancreas transplant",
            "abstract": "Outcomes of pancreas transplant and pancreas grafts in patients.",
            "mesh": "Diseases DigestiveSystem Neoplasms",
        },
    ),
    Document(
        "C2",
        {
            "title": "Organ failure in patients with acute leukemia",
            "abstract": "Leukemia treatment outcomes and organ failure risks.",
            "mesh": "Diseases DigestiveSystem",
        },
    ),
    Document(
        "C3",
        {
            "title": "Leukemia incidence in cancer research cohorts",
            "abstract": "Leukemia is common in cancer registries; leukemia subtypes vary.",
            "mesh": "Diseases Neoplasms",
        },
    ),
    Document(
        "C4",
        {
            "title": "Gastric cancer and pancreas function",
            "abstract": "Pancreas enzyme levels in gastric cancer patients.",
            "mesh": "Diseases DigestiveSystem",
        },
    ),
    Document(
        "C5",
        {
            "title": "Blood disorders overview",
            "abstract": "Leukemia, lymphoma and anemia incidence worldwide.",
            "mesh": "Diseases Neoplasms Blood",
        },
    ),
]


def main():
    # 1. Build the inverted index.  The "mesh" field is the predicate
    #    field: its terms are usable in context specifications.
    index = build_index(CITATIONS)
    engine = ContextSearchEngine(index)

    # 2. A context-sensitive query: keywords | context predicates.
    query = parse_query("leukemia | DigestiveSystem")

    print(f"query: {query}\n")

    # 3. Context-sensitive ranking: statistics come from the context.
    print("context-sensitive ranking (statistics from D_P):")
    for hit in engine.search(query).hits:
        print(f"  {hit.external_id}  score={hit.score:.3f}")

    # 4. The conventional baseline: same result set, global statistics.
    print("\nconventional ranking (statistics from all of D):")
    for hit in engine.search_conventional(query).hits:
        print(f"  {hit.external_id}  score={hit.score:.3f}")

    # 5. The statistics behind the difference: leukemia's document
    #    frequency over the whole collection vs inside the context.
    stats = engine.context_statistics(query.context, ["leukemia"])
    print(
        f"\ndf('leukemia') over D   = {index.document_frequency('leukemia')}"
        f" / {index.num_docs} citations"
    )
    print(
        f"df('leukemia') over D_P = {stats.df_for('leukemia')}"
        f" / {stats.cardinality} citations  <- rarer, hence more discriminative"
    )

    # 6. Execution diagnostics.
    report = engine.search(query).report
    print(
        f"\ncontext size: {report.context_size} documents; "
        f"evaluation path: {report.resolution.path}; "
        f"model cost: {report.counter.model_cost} entries"
    )


if __name__ == "__main__":
    main()
