"""Incremental updates: growing the collection without rebuilding views.

The paper selects and materialises views once; a live deployment keeps
ingesting citations.  Because every view column is a distributive
aggregate, insertions maintain views exactly with per-document deltas —
this example ingests a batch, maintains the catalog, verifies a query
against a from-scratch rebuild, and shows the re-selection policy
tripping once the collection has drifted far enough.

Run:  python examples/incremental_updates.py
"""

from repro import (
    ContextSearchEngine,
    CorpusConfig,
    build_index,
    generate_corpus,
    select_views,
)
from repro.views import maintain_catalog, needs_reselection


def main():
    print("generating corpus (5,000 citations); holding back 1,000 ...")
    corpus = generate_corpus(CorpusConfig(num_docs=5000, seed=1234))
    initial, incoming = corpus.documents[:4000], corpus.documents[4000:]

    index = build_index(initial)
    t_c = index.num_docs // 100
    catalog, report = select_views(index, t_c=t_c, t_v=1024)
    baseline = index.num_docs
    print(
        f"selected {report.num_views} views over {baseline} documents "
        f"(T_C={t_c}, T_V=1024)"
    )

    engine = ContextSearchEngine(index, catalog=catalog)
    covered = next(iter(catalog)).keyword_set
    predicate = max(sorted(covered), key=index.predicate_frequency)
    keyword = max(
        list(index.vocabulary)[:300], key=index.document_frequency
    )
    query = f"{keyword} | {predicate}"
    before = engine.search(query, top_k=5)
    print(f"\nquery {query!r} before updates: {before.external_ids()}")

    # Ingest in two batches, maintaining the views after each.
    for batch_number, start in enumerate((0, 500), start=1):
        batch = incoming[start : start + 500]
        stored = index.append_documents(batch)
        maintenance = maintain_catalog(
            catalog, index, stored, t_v=1024, baseline_num_docs=baseline
        )
        print(
            f"batch {batch_number}: +{maintenance.documents_applied} docs, "
            f"{maintenance.views_updated} views updated, "
            f"{maintenance.new_group_tuples} new group tuples, "
            f"growth {maintenance.growth_since_selection:.1%}, "
            f"reselect? {needs_reselection(maintenance)}"
        )

    after = engine.search(query, top_k=5)
    print(f"\nafter updates (views path = {after.report.resolution.path}): "
          f"{after.external_ids()}")

    # Ground truth: rebuild everything from scratch and compare.
    fresh = ContextSearchEngine(build_index(corpus.documents))
    reference = fresh.search(query, top_k=5)
    match = after.external_ids() == reference.external_ids()
    print(f"maintained catalog matches full rebuild: {match}")
    assert match


if __name__ == "__main__":
    main()
