"""Domain scenario: a specialist searching inside an ontology-defined context.

Mirrors the paper's motivating workflow (Section 1.1): a researcher
navigates the MeSH-like ontology, selects the concepts that define their
domain, and issues keyword queries whose ranking is computed from that
domain's statistics.  Materialized views keep the specialised ranking as
fast as ordinary search.

Run:  python examples/gi_cancer_search.py
"""

from repro import (
    ContextQuery,
    ContextSearchEngine,
    CorpusConfig,
    KeywordQuery,
    generate_corpus,
    select_views,
)
from repro.data import OntologyNavigator


def pick_domain(corpus, index):
    """The Figure 2 flow: navigate the ontology with live document
    counts and select the specialty's concept."""
    navigator = OntologyNavigator(corpus.ontology, index)
    top_category = navigator.roots()[0]
    print(f"navigating ontology: category {top_category.name} "
          f"({top_category.document_count} citations)")
    specialty = navigator.children(top_category.name)[0]
    print(
        f"  -> selecting {specialty.name} "
        f"({specialty.document_count} citations, "
        f"{specialty.num_children} sub-concepts)"
    )
    navigator.select(specialty.name)
    return specialty.name, navigator.build()


def main():
    print("generating a synthetic PubMed-like corpus (8,000 citations)...")
    corpus = generate_corpus(CorpusConfig(num_docs=8000, seed=404))
    index = corpus.build_index()

    t_c = index.num_docs // 100  # the paper's 1% threshold
    print(f"selecting materialized views (T_C={t_c}, T_V=1024)...")
    catalog, report = select_views(index, t_c=t_c, t_v=1024)
    print(
        f"  {report.num_views} views selected "
        f"({report.views_from_decomposition} by decomposition, "
        f"{report.views_from_mining} by residue mining)"
    )
    engine = ContextSearchEngine(index, catalog=catalog)

    domain, context = pick_domain(corpus, index)
    domain_size = index.predicate_frequency(domain)
    print(
        f"\nspecialist domain: {domain} "
        f"({domain_size} of {index.num_docs} citations)"
    )

    # Query with the domain's own characteristic word (common inside the
    # domain, rare outside) plus a focus word: the paper's pancreas/
    # leukemia situation.
    domain_word = corpus.topic_vocabularies[domain][0]
    focus_concept = corpus.ontology.term(domain).children[0]
    focus_word = corpus.topic_vocabularies[focus_concept][0]

    query = ContextQuery(
        KeywordQuery([domain_word, focus_word]), context
    )
    print(f"query: {query}\n")

    ctx_results = engine.search(query, top_k=10)
    conv_results = engine.search_conventional(query, top_k=10)

    print("rank  context-sensitive  conventional")
    for rank, (a, b) in enumerate(
        zip(ctx_results.hits, conv_results.hits), start=1
    ):
        marker = "   <- differs" if a.external_id != b.external_id else ""
        print(f"{rank:>4}  {a.external_id:<17}  {b.external_id}{marker}")

    stats = engine.context_statistics(context, [domain_word, focus_word])
    dw = index.analyzer.analyze_query_term(domain_word)
    fw = index.analyzer.analyze_query_term(focus_word)
    print(
        f"\nwhy they differ — document frequencies:\n"
        f"  {domain_word!r}: df over D = {index.document_frequency(dw)}"
        f" / {index.num_docs};  df over D_P = {stats.df_for(dw)} / {stats.cardinality}\n"
        f"  {focus_word!r}: df over D = {index.document_frequency(fw)}"
        f" / {index.num_docs};  df over D_P = {stats.df_for(fw)} / {stats.cardinality}"
    )

    report_obj = ctx_results.report
    print(
        f"\nevaluation path: {report_obj.resolution.path} "
        f"({report_obj.resolution.views_used} view(s), "
        f"{report_obj.resolution.rare_term_fallbacks} rare-term fallback(s)); "
        f"elapsed {report_obj.elapsed_seconds * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
