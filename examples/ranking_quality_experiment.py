"""A self-contained Figure 6 experiment (Section 6.1) at example scale.

Generates a corpus and a TREC-Genomics-style topic set, evaluates every
topic under conventional and context-sensitive ranking, and prints the
per-topic precision@20 / reciprocal-rank series plus the summary the
paper quotes.  For the full-scale version, run
``pytest benchmarks/bench_figure6_quality.py --benchmark-only``.

Run:  python examples/ranking_quality_experiment.py
"""

from repro import ContextSearchEngine, CorpusConfig, generate_corpus
from repro.data import generate_benchmark
from repro.eval import run_quality_comparison


def main():
    print("generating corpus (8,000 citations) and 20 topics...")
    corpus = generate_corpus(CorpusConfig(num_docs=8000, seed=606))
    index = corpus.build_index()
    benchmark = generate_benchmark(
        corpus, index, num_topics=20, min_result_size=30, min_relevant=5, seed=11
    )

    engine = ContextSearchEngine(index)
    comparison = run_quality_comparison(engine, benchmark, k=20)

    print("\ntopic  P@20 conv  P@20 ctx  RR conv  RR ctx   question")
    for outcome in comparison.outcomes:
        print(
            f"Q{outcome.topic_id:<5} {outcome.precision_conventional:^9} "
            f"{outcome.precision_context:^8} "
            f"{outcome.rr_conventional:^7.2f}  {outcome.rr_context:^6.2f}  "
            f"{outcome.question[:50]}..."
        )

    summary = comparison.summary()
    print(
        f"\ncontext-sensitive wins {summary['context_wins']} topics, "
        f"loses {summary['conventional_wins']}, ties {summary['ties']} "
        f"(paper at PubMed scale: 21/30 wins)"
    )
    print(
        f"mean precision@20: {summary['mean_precision_conventional']:.1f} -> "
        f"{summary['mean_precision_context']:.1f} "
        f"(paper: 7.9 -> 10.2)"
    )
    print(
        f"mean reciprocal rank: {summary['mrr_conventional']:.2f} -> "
        f"{summary['mrr_context']:.2f} (paper: 0.62 -> 0.78)"
    )


if __name__ == "__main__":
    main()
