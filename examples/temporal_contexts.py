"""Time-extended contexts: "documents about X published after 1998".

Implements the extension sketched in the paper's Section 7: context
specifications gain a numeric range variable (publication year), and
range-partitioned materialized views answer the per-window statistics
without materialising the window.  The same query ranks differently in
different eras because each era is a different context with its own
keyword statistics.

Run:  python examples/temporal_contexts.py
"""

from repro import CorpusConfig, generate_corpus
from repro.temporal import (
    NumericAttributeIndex,
    TemporalSearchEngine,
    materialize_temporal_view,
)
from repro.views import WideSparseTable


def main():
    print("generating corpus (6,000 citations, years 1985-2010)...")
    corpus = generate_corpus(CorpusConfig(num_docs=6000, seed=909))
    index = corpus.build_index()
    years = NumericAttributeIndex.from_index(index, "year")
    print(f"publication years span {years.min_value}-{years.max_value}")

    # A broad specialty context plus a probe keyword.
    domain = max(
        (
            t
            for t in corpus.ontology.all_terms
            if corpus.ontology.term(t).parent is not None
            and not corpus.ontology.term(t).is_leaf
        ),
        key=index.predicate_frequency,
    )
    keyword = corpus.topic_vocabularies[domain][1]

    # Materialise a year-partitioned view over the domain.
    table = WideSparseTable.from_index(index)
    frequent = [
        w for w in index.vocabulary if index.document_frequency(w) >= 60
    ]
    view = materialize_temporal_view(
        table, years, {domain}, df_terms=frequent
    )
    print(
        f"temporal view over {domain}: {view.size} (pattern, year) tuples, "
        f"{len(view.df_terms)} df columns"
    )

    engine = TemporalSearchEngine(index, years, views=[view])
    query = f"{keyword} | {domain}"

    print(f"\nquery: {query!r} in three time windows\n")
    for low, high, label in (
        (None, 1995, "early era (…-1995)"),
        (1996, 2003, "middle era (1996-2003)"),
        (2004, None, "recent era (2004-…)"),
    ):
        results = engine.search(query, low=low, high=high, top_k=5)
        report = results.report
        print(
            f"{label}: context={report.context_size} docs, "
            f"path={report.resolution.path}"
        )
        for rank, hit in enumerate(results.hits, start=1):
            year = years.value(hit.doc_id)
            print(f"   {rank}. {hit.external_id} ({year})  score={hit.score:.3f}")
        print()


if __name__ == "__main__":
    main()
