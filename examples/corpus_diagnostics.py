"""Corpus diagnostics: verify the synthetic substrate has the right shape.

DESIGN.md argues the PubMed substitution is valid because the paper's
claims rest on distributional properties.  This example *measures* those
properties on a generated corpus: Zipfian term frequencies, heavy-tailed
context sizes, per-context statistical divergence, and the Section 1.1
idf inversions the quality benchmark is built on.

Run:  python examples/corpus_diagnostics.py
"""

from repro import CorpusConfig, generate_corpus
from repro.data import (
    context_divergence,
    context_size_profile,
    find_idf_inversions,
    fit_zipf,
)


def main():
    print("generating corpus (8,000 citations)...")
    corpus = generate_corpus(CorpusConfig(num_docs=8000, seed=31337))
    index = corpus.build_index()

    # 1. Term frequencies are Zipfian.
    frequencies = [index.document_frequency(w) for w in index.vocabulary]
    fit = fit_zipf(frequencies)
    print(
        f"\nterm rank-frequency: slope={fit.slope:.2f}, "
        f"R²={fit.r_squared:.3f}  "
        f"({'heavy-tailed ✓' if fit.is_heavy_tailed else 'NOT heavy-tailed ✗'})"
    )

    # 2. Context sizes span orders of magnitude (ancestor inheritance).
    profile = context_size_profile(index)
    t_c = index.num_docs // 100
    print(
        f"context sizes: min={profile.min}, median={profile.median}, "
        f"max={profile.max} (dynamic range {profile.dynamic_range:.0f}x); "
        f"{profile.above(t_c)} of {len(profile.sizes)} predicates exceed "
        f"T_C={t_c}"
    )

    # 3. Contexts have genuinely different keyword statistics.
    print("\nper-context df divergence from the collection (JS, bits):")
    predicates = sorted(
        index.predicate_vocabulary,
        key=index.predicate_frequency,
        reverse=True,
    )
    for predicate in predicates[:5]:
        divergence = context_divergence(index, predicate)
        size = index.predicate_frequency(predicate)
        print(f"  {predicate:<24} |D_P|={size:<6} JS={divergence:.3f}")

    # 4. Section 1.1's idf inversions exist.
    inversions = find_idf_inversions(index, max_predicates=8)
    print(f"\nidf inversions found: {len(inversions)}")
    for example in inversions[:4]:
        print(
            f"  in {example.predicate}: {example.focus_term!r} is "
            f"{example.global_ratio:.1f}x more common than "
            f"{example.context_common_term!r} globally, but "
            f"{example.context_ratio:.1f}x *rarer* inside the context"
        )
    if inversions:
        print(
            "\n=> conventional ranking overweights the context-common term;"
            "\n   context-sensitive ranking correctly boosts the focus term."
        )


if __name__ == "__main__":
    main()
