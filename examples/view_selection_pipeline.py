"""Walkthrough of the view-selection machinery (Section 5).

Shows each stage the hybrid selector runs — keyword association graph,
balanced vertex separators, residue mining, greedy covering — and audits
the final selection against the Problem 5.1 guarantee with exact ground
truth.

Run:  python examples/view_selection_pipeline.py
"""

from repro import (
    CorpusConfig,
    KeywordAssociationGraph,
    TransactionDatabase,
    ViewSizeEstimator,
    WideSparseTable,
    generate_corpus,
)
from repro.selection import (
    decomposition_select,
    eclat,
    greedy_view_selection,
    hybrid_selection,
    max_combination_size,
    verify_selection,
)

T_V = 512


def main():
    print("generating corpus (6,000 citations)...")
    corpus = generate_corpus(CorpusConfig(num_docs=6000, seed=777))
    index = corpus.build_index()
    table = WideSparseTable.from_index(index)
    db = TransactionDatabase(table.predicate_sets())
    estimator = ViewSizeEstimator(table)
    t_c = len(db) // 100

    # -- Stage 1: the keyword association graph -------------------------
    kag = KeywordAssociationGraph.from_transactions(db, t_c)
    components = kag.connected_components()
    print(
        f"\nKAG at T_C={t_c}: {len(kag)} vertices, {kag.num_edges()} edges, "
        f"{len(components)} connected component(s); "
        f"largest has {len(components[0])} vertices"
    )

    # -- Stage 2: decomposition with balanced separators -----------------
    decomposition = decomposition_select(
        kag, estimator, T_V, t_c, replicate="support",
        support_fn=db.support, max_trials=16,
    )
    print(
        f"decomposition: {len(decomposition.covered)} directly-coverable "
        f"pieces, {len(decomposition.dense_residues)} dense residues, "
        f"{decomposition.stats.separators_computed} separators, "
        f"{decomposition.stats.supports_computed} triangle supports computed"
    )

    # -- Stage 3: mine the residues, cover with Algorithm 1 --------------
    for residue in decomposition.dense_residues:
        projected = db.project(residue)
        mined = eclat(
            projected, min_support=t_c, max_size=max_combination_size(T_V)
        )
        combos = mined.maximal_itemsets()
        views = greedy_view_selection(combos, estimator, T_V)
        print(
            f"residue of {len(residue)} keywords: {len(mined.itemsets)} "
            f"frequent combinations -> {len(combos)} maximal -> "
            f"{len(views)} views"
        )

    # -- The one-call equivalent -----------------------------------------
    report = hybrid_selection(db, estimator, t_c, T_V)
    print(
        f"\nhybrid_selection: {report.num_views} views "
        f"({report.views_from_decomposition} decomposition, "
        f"{report.views_from_mining} mining)"
    )
    sizes = sorted(estimator.exact(ks) for ks in report.keyword_sets)
    print(f"view sizes (tuples): min={sizes[0]}, median={sizes[len(sizes)//2]}, max={sizes[-1]} (T_V={T_V})")

    # -- Audit: Problem 5.1, checked exactly ------------------------------
    audit = verify_selection(
        db, report.keyword_sets, estimator, t_c, T_V,
        max_combination_size=max_combination_size(T_V),
    )
    print(
        f"\naudit: {audit.checked_combinations} frequent predicate "
        f"combinations at T_C={t_c}; uncovered={len(audit.uncovered)}, "
        f"oversized views={len(audit.oversized_views)} -> "
        f"{'GUARANTEE HOLDS' if audit.ok else 'VIOLATION'}"
    )


if __name__ == "__main__":
    main()
